#pragma once

/// \file log_manager.h
/// Write-ahead log: commit-time serialization into in-memory buffers
/// (LOG_SERIALIZE OU) and a background flusher that writes filled buffers to
/// the log device on a knob-controlled interval (LOG_FLUSH OU, a "batch" OU
/// whose features are the totals accumulated since the last flush).
///
/// Robustness: the `wal.append` and `wal.flush` fault points are consulted on
/// every pass; injected (or real short-write) failures are retried with
/// bounded exponential backoff + jitter before the error surfaces. A failed
/// flush re-queues its buffers, so no committed bytes are lost unless the
/// fault simulates a crash (torn write) — that scenario is what Crash() +
/// ReplayLog's torn-tail tolerance exist to test.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/settings.h"
#include "common/macros.h"
#include "common/retry.h"
#include "common/status.h"
#include "wal/log_record.h"

namespace mb2 {

class LogManager {
 public:
  /// `path` is the log device file; empty disables the WAL entirely.
  LogManager(std::string path, SettingsManager *settings);
  ~LogManager();
  MB2_DISALLOW_COPY_AND_MOVE(LogManager);

  /// Serializes a transaction's redo records (called at commit). Tracked as
  /// the LOG_SERIALIZE OU. Errors only after the retry budget is exhausted;
  /// the records are then NOT buffered (the in-memory commit stands but is
  /// not durable — callers decide whether that is fatal).
  Status Serialize(const std::vector<RedoRecord> &records, uint64_t txn_id);

  /// Starts/stops the background flusher thread.
  void StartFlusher();
  void StopFlusher();

  /// Synchronously flushes everything buffered (tracked as LOG_FLUSH) and
  /// fsyncs the device, so the bytes survive an OS crash or power loss, not
  /// just a process kill. On a retry-exhausted injected failure the buffers
  /// are re-queued and the error returned; a later call can still flush them.
  Status FlushNow();

  /// Crash simulation (tests / fault harness): drops every buffered byte and
  /// closes the log device without flushing, as a process kill would. The
  /// manager is inert afterwards; recovery reads whatever reached the disk.
  void Crash();

  /// Opens a fresh log device on a manager that currently has none (either
  /// constructed with an empty path or inert after Crash()). This is how a
  /// promoted replica starts logging its own writes: its history so far
  /// lives in the shipped log copy it replayed, and new commits go to this
  /// new segment. Fails if a device is already open.
  Status OpenSegment(const std::string &path);

  /// Retry budget for append/flush fault handling.
  void set_retry_policy(const RetryPolicy &policy) { retry_policy_ = policy; }
  const RetryPolicy &retry_policy() const { return retry_policy_; }

  bool enabled() const { return file_ != nullptr; }
  /// The log device path ("" when disabled). Replication ships bytes out of
  /// this file; its on-disk size after a flush is the durable tip.
  const std::string &path() const { return path_; }
  uint64_t total_bytes_flushed() const {
    return total_flushed_.load(std::memory_order_relaxed);
  }
  /// Redo records buffered by Serialize since startup (flushed or not);
  /// with `wal_sync_commit` on this equals the durable record count, which
  /// is what replica-lag-in-records is measured against.
  uint64_t total_records_serialized() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  /// Serialize calls that surfaced an error after retries.
  uint64_t append_errors() const {
    return append_errors_.load(std::memory_order_relaxed);
  }
  /// Flush attempts that surfaced an error after retries (incl. torn writes).
  uint64_t flush_errors() const {
    return flush_errors_.load(std::memory_order_relaxed);
  }

 private:
  void FlusherLoop();
  /// Must hold mutex_; moves the active buffer to the filled list.
  void SealActiveLocked();
  /// With `sync_device` the flush ends in fsync, so the bytes survive an OS
  /// crash, not just a process crash.
  Status FlushFilled(bool sync_device);

  std::FILE *file_ = nullptr;
  std::string path_;
  SettingsManager *settings_;
  RetryPolicy retry_policy_;

  std::mutex mutex_;
  LogBuffer active_;
  std::vector<LogBuffer> filled_;
  /// Held across the whole seal-swap + write + flush sequence (and by
  /// anything that closes/reopens file_), so concurrent flushers cannot
  /// reorder sealed buffers on their way to the device: WAL file order is
  /// commit order, which recovery replay and replication shipping rely on.
  /// Lock order: flush_mutex_ before mutex_, never the reverse.
  std::mutex flush_mutex_;

  std::thread flusher_;
  std::condition_variable flusher_cv_;
  std::mutex flusher_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> total_flushed_{0};
  std::atomic<uint64_t> total_records_{0};
  std::atomic<uint64_t> append_errors_{0};
  std::atomic<uint64_t> flush_errors_{0};
};

}  // namespace mb2
