#include "wal/log_recovery.h"

#include <cstdio>

#include "wal/log_applier.h"

namespace mb2 {

Result<RecoveryStats> ReplayLog(const std::string &path, Catalog *catalog,
                                TransactionManager *txn_manager,
                                const ReplayOptions &options) {
  FILE *file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open log " + path);

  // Whole-file replay is the batch-of-everything case of the incremental
  // applier the replication follower drives: stream the file through in
  // chunks, then interpret a leftover partial record as the torn tail.
  LogApplier applier(catalog, txn_manager);
  uint8_t buf[64 * 1024];
  uint64_t offset = 0;
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    const Status s = applier.Apply(offset, buf, n);
    if (!s.ok()) {
      std::fclose(file);
      return s;  // structural corruption, never a torn tail
    }
    offset += n;
  }
  std::fclose(file);

  RecoveryStats stats;
  stats.records_applied = applier.total().records_applied;
  stats.inserts = applier.total().inserts;
  stats.updates = applier.total().updates;
  stats.deletes = applier.total().deletes;
  stats.skipped = applier.total().skipped;
  if (applier.has_partial_record()) {
    if (!options.tolerate_torn_tail) {
      return Status::InvalidArgument("truncated or corrupt log record");
    }
    stats.torn_tail = true;  // the durable prefix is applied
  }
  return stats;
}

}  // namespace mb2
