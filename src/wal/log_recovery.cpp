#include "wal/log_recovery.h"

#include <cstdio>
#include <map>
#include <vector>

#include "index/bplus_tree.h"

namespace mb2 {

namespace {

/// Streaming reader over the raw log bytes.
class LogCursor {
 public:
  explicit LogCursor(FILE *file) : file_(file) {}

  template <typename T>
  bool Read(T *out) {
    return std::fread(out, sizeof(T), 1, file_) == 1;
  }

  /// True when the last failed read hit a clean end-of-file (a torn tail)
  /// rather than garbage mid-stream.
  bool Eof() const { return std::feof(file_) != 0; }

  bool ReadValue(Value *out) {
    uint8_t tag;
    if (!Read(&tag)) return false;
    switch (static_cast<TypeId>(tag)) {
      case TypeId::kInteger: {
        int64_t v;
        if (!Read(&v)) return false;
        *out = Value::Integer(v);
        return true;
      }
      case TypeId::kDouble: {
        double v;
        if (!Read(&v)) return false;
        *out = Value::Double(v);
        return true;
      }
      case TypeId::kVarchar: {
        uint32_t len;
        if (!Read(&len) || len > (1u << 24)) return false;
        std::string s(len, '\0');
        if (len > 0 && std::fread(s.data(), 1, len, file_) != len) return false;
        *out = Value::Varchar(std::move(s));
        return true;
      }
    }
    return false;
  }

 private:
  FILE *file_;
};

}  // namespace

Result<RecoveryStats> ReplayLog(const std::string &path, Catalog *catalog,
                                TransactionManager *txn_manager,
                                const ReplayOptions &options) {
  FILE *file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open log " + path);
  LogCursor cursor(file);
  RecoveryStats stats;

  // Resolve table ids once.
  std::map<uint32_t, Table *> tables;
  for (const auto &name : catalog->TableNames()) {
    Table *t = catalog->GetTable(name);
    tables[t->table_id()] = t;
  }
  // Logged slot -> replayed slot, per table.
  std::map<uint32_t, std::map<SlotId, SlotId>> slot_map;

  auto txn = txn_manager->Begin();
  auto maintain_insert = [&](Table *table, const Tuple &row, SlotId slot) {
    for (BPlusTree *index : catalog->GetTableIndexes(table->name())) {
      Tuple key;
      for (uint32_t c : index->schema().key_columns) key.push_back(row[c]);
      index->Insert(key, slot);
    }
  };

  for (;;) {
    uint8_t op_tag;
    if (!cursor.Read(&op_tag)) break;  // clean EOF
    uint32_t table_id = 0;
    uint64_t logged_slot = 0, txn_id = 0;
    uint32_t nvalues = 0;
    if (!cursor.Read(&table_id) || !cursor.Read(&logged_slot) ||
        !cursor.Read(&txn_id) || !cursor.Read(&nvalues) ||
        nvalues > (1u << 16)) {
      if (options.tolerate_torn_tail && cursor.Eof() && nvalues <= (1u << 16)) {
        stats.torn_tail = true;
        break;  // crash tore the last record's header; the prefix is durable
      }
      std::fclose(file);
      txn_manager->Abort(txn.get());
      return Status::InvalidArgument("truncated or corrupt log record");
    }
    Tuple row;
    row.reserve(nvalues);
    bool torn = false;
    for (uint32_t i = 0; i < nvalues; i++) {
      Value v;
      if (!cursor.ReadValue(&v)) {
        if (options.tolerate_torn_tail && cursor.Eof()) {
          torn = true;
          break;
        }
        std::fclose(file);
        txn_manager->Abort(txn.get());
        return Status::InvalidArgument("corrupt value in log record");
      }
      row.push_back(std::move(v));
    }
    if (torn) {
      stats.torn_tail = true;
      break;  // the incomplete trailing record is discarded, prefix applied
    }

    auto table_it = tables.find(table_id);
    if (table_it == tables.end()) {
      stats.skipped++;
      continue;
    }
    Table *table = table_it->second;
    auto &mapping = slot_map[table_id];

    switch (static_cast<LogOpType>(op_tag)) {
      case LogOpType::kInsert: {
        const SlotId slot = table->Insert(txn.get(), row);
        mapping[logged_slot] = slot;
        maintain_insert(table, row, slot);
        stats.inserts++;
        stats.records_applied++;
        break;
      }
      case LogOpType::kUpdate: {
        auto it = mapping.find(logged_slot);
        if (it == mapping.end()) {
          stats.skipped++;
          break;
        }
        if (table->Update(txn.get(), it->second, row).ok()) {
          stats.updates++;
          stats.records_applied++;
        } else {
          stats.skipped++;
        }
        break;
      }
      case LogOpType::kDelete: {
        auto it = mapping.find(logged_slot);
        if (it == mapping.end()) {
          stats.skipped++;
          break;
        }
        if (table->Delete(txn.get(), it->second).ok()) {
          stats.deletes++;
          stats.records_applied++;
        } else {
          stats.skipped++;
        }
        break;
      }
      case LogOpType::kCommit:
        break;  // commit markers are implicit in this redo-only log
    }
  }
  std::fclose(file);
  txn_manager->Commit(txn.get());
  return stats;
}

}  // namespace mb2
