#pragma once

/// \file log_record.h
/// Binary serialization of redo records into log buffers. Record wire
/// format: [u8 op][u32 table][u64 slot][u64 txn][u32 nvalues]{values...};
/// integer/double values are 1-byte type tag + 8 bytes, varchars are tag +
/// u32 length + bytes.

#include <cstdint>
#include <vector>

#include "txn/transaction.h"

namespace mb2 {

/// A fixed-capacity log buffer filled by serialization and drained by the
/// flusher.
class LogBuffer {
 public:
  static constexpr size_t kCapacity = 1 << 16;  // 64 KB

  bool HasSpace(size_t bytes) const { return data_.size() + bytes <= kCapacity; }
  void Append(const uint8_t *bytes, size_t len) {
    data_.insert(data_.end(), bytes, bytes + len);
  }
  const std::vector<uint8_t> &data() const { return data_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void Reset() { data_.clear(); }
  uint32_t num_records = 0;

 private:
  std::vector<uint8_t> data_;
};

/// Serializes one redo record; returns the encoded size in bytes.
size_t SerializeRedoRecord(const RedoRecord &record, uint64_t txn_id,
                           std::vector<uint8_t> *out);

/// Size the record will occupy once encoded (without encoding it).
size_t RedoRecordSize(const RedoRecord &record);

}  // namespace mb2
