#include "wal/log_applier.h"

#include <cstring>

#include "index/bplus_tree.h"

namespace mb2 {

namespace {

/// Same structural limits the file-based replay enforced: anything larger is
/// corruption by construction, not a record we haven't finished receiving.
constexpr uint32_t kMaxValues = 1u << 16;
constexpr uint32_t kMaxVarcharLen = 1u << 24;

template <typename T>
bool ReadRaw(const uint8_t *data, size_t size, size_t *pos, T *out) {
  if (*pos + sizeof(T) > size) return false;
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

LogApplier::LogApplier(Catalog *catalog, TransactionManager *txn_manager)
    : catalog_(catalog), txn_manager_(txn_manager) {}

LogApplier::ParseOutcome LogApplier::ParseRecord(const uint8_t *data,
                                                 size_t size, size_t *consumed,
                                                 ParsedRecord *out) {
  size_t pos = 0;
  uint8_t op_tag;
  if (!ReadRaw(data, size, &pos, &op_tag)) return ParseOutcome::kNeedMore;
  if (op_tag > static_cast<uint8_t>(LogOpType::kCommit)) {
    return ParseOutcome::kCorrupt;
  }
  out->op = static_cast<LogOpType>(op_tag);
  if (!ReadRaw(data, size, &pos, &out->table_id) ||
      !ReadRaw(data, size, &pos, &out->slot)) {
    return ParseOutcome::kNeedMore;
  }
  uint64_t txn_id;  // logged for diagnostics; replay does not use it
  if (!ReadRaw(data, size, &pos, &txn_id) ||
      !ReadRaw(data, size, &pos, &out->nvalues)) {
    return ParseOutcome::kNeedMore;
  }
  if (out->nvalues > kMaxValues) return ParseOutcome::kCorrupt;

  out->row.clear();
  out->row.reserve(out->nvalues);
  for (uint32_t i = 0; i < out->nvalues; i++) {
    uint8_t type_tag;
    if (!ReadRaw(data, size, &pos, &type_tag)) return ParseOutcome::kNeedMore;
    switch (static_cast<TypeId>(type_tag)) {
      case TypeId::kInteger: {
        int64_t v;
        if (!ReadRaw(data, size, &pos, &v)) return ParseOutcome::kNeedMore;
        out->row.push_back(Value::Integer(v));
        break;
      }
      case TypeId::kDouble: {
        double v;
        if (!ReadRaw(data, size, &pos, &v)) return ParseOutcome::kNeedMore;
        out->row.push_back(Value::Double(v));
        break;
      }
      case TypeId::kVarchar: {
        uint32_t len;
        if (!ReadRaw(data, size, &pos, &len)) return ParseOutcome::kNeedMore;
        if (len > kMaxVarcharLen) return ParseOutcome::kCorrupt;
        if (pos + len > size) return ParseOutcome::kNeedMore;
        out->row.push_back(Value::Varchar(
            std::string(reinterpret_cast<const char *>(data + pos), len)));
        pos += len;
        break;
      }
      default:
        return ParseOutcome::kCorrupt;
    }
  }
  *consumed = pos;
  return ParseOutcome::kRecord;
}

Table *LogApplier::ResolveTable(uint32_t table_id) {
  auto it = tables_.find(table_id);
  if (it != tables_.end()) return it->second;
  // Lazy refresh: the id may belong to a table registered after the last
  // lookup miss (schema DDL is not logged, so followers create tables out
  // of band). The catalog version gates the rescan so a log full of
  // unknown-table records costs one miss, not one catalog walk per record.
  const uint64_t version = catalog_->version();
  if (version == scanned_catalog_version_) return nullptr;
  scanned_catalog_version_ = version;
  for (const auto &name : catalog_->TableNames()) {
    Table *t = catalog_->GetTable(name);
    tables_[t->table_id()] = t;
  }
  it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second;
}

Status LogApplier::Apply(uint64_t offset, const uint8_t *data, size_t len,
                         ApplyStats *stats) {
  if (corrupt_) {
    return Status::InvalidArgument("log stream previously marked corrupt");
  }
  if (offset > stream_offset_) {
    return Status::InvalidArgument(
        "log stream gap: have " + std::to_string(stream_offset_) +
        ", batch starts at " + std::to_string(offset));
  }
  // Idempotent overlap skip: drop the prefix of this batch that was already
  // consumed (a retried or re-shipped batch, or a restart re-feed).
  const uint64_t overlap = stream_offset_ - offset;
  if (overlap >= len) return Status::Ok();  // fully duplicate batch
  data += overlap;
  len -= overlap;

  pending_.insert(pending_.end(), data, data + len);
  stream_offset_ += len;
  return DrainPending(stats);
}

Status LogApplier::DrainPending(ApplyStats *stats) {
  size_t pos = 0;
  std::unique_ptr<Transaction> txn;
  ApplyStats batch;

  const auto finish = [&](Status status) {
    // Consume parsed bytes even on corruption so applied_offset() stays
    // truthful about what reached the tables.
    pending_.erase(pending_.begin(), pending_.begin() + pos);
    if (txn != nullptr) txn_manager_->Commit(txn.get());
    total_.records_applied += batch.records_applied;
    total_.inserts += batch.inserts;
    total_.updates += batch.updates;
    total_.deletes += batch.deletes;
    total_.skipped += batch.skipped;
    if (stats != nullptr) *stats = batch;
    return status;
  };

  for (;;) {
    ParsedRecord rec;
    size_t consumed = 0;
    const ParseOutcome outcome =
        ParseRecord(pending_.data() + pos, pending_.size() - pos, &consumed, &rec);
    if (outcome == ParseOutcome::kNeedMore) break;
    if (outcome == ParseOutcome::kCorrupt) {
      corrupt_ = true;
      return finish(Status::InvalidArgument("corrupt log record in stream"));
    }
    pos += consumed;

    Table *table = ResolveTable(rec.table_id);
    if (table == nullptr) {
      batch.skipped++;
      continue;
    }
    if (txn == nullptr) txn = txn_manager_->Begin();
    auto &mapping = slot_map_[rec.table_id];

    switch (rec.op) {
      case LogOpType::kInsert: {
        const SlotId slot = table->Insert(txn.get(), rec.row);
        mapping[rec.slot] = slot;
        for (BPlusTree *index : catalog_->GetTableIndexes(table->name())) {
          Tuple key;
          for (uint32_t c : index->schema().key_columns) key.push_back(rec.row[c]);
          index->Insert(key, slot);
        }
        batch.inserts++;
        batch.records_applied++;
        break;
      }
      case LogOpType::kUpdate: {
        auto it = mapping.find(rec.slot);
        if (it == mapping.end()) {
          batch.skipped++;
          break;
        }
        if (table->Update(txn.get(), it->second, rec.row).ok()) {
          batch.updates++;
          batch.records_applied++;
        } else {
          batch.skipped++;
        }
        break;
      }
      case LogOpType::kDelete: {
        auto it = mapping.find(rec.slot);
        if (it == mapping.end()) {
          batch.skipped++;
          break;
        }
        if (table->Delete(txn.get(), it->second).ok()) {
          batch.deletes++;
          batch.records_applied++;
        } else {
          batch.skipped++;
        }
        break;
      }
      case LogOpType::kCommit:
        break;  // commit markers are implicit in this redo-only log
    }
  }
  return finish(Status::Ok());
}

}  // namespace mb2
