#include "wal/log_manager.h"

#include <unistd.h>

#include <algorithm>
#include <iterator>

#include "common/fault_injector.h"
#include "metrics/metrics_collector.h"
#include "metrics/work_stats.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace mb2 {

namespace {

/// Evaluates `point` under the retry policy: injected kError faults are
/// retried with backoff + jitter until the point stops firing or the budget
/// is spent. A kTornWrite fire is reported through `torn_fraction_out` (the
/// caller performs the partial write); kThrow propagates immediately.
Status CheckFaultPointWithRetry(const char *point, const RetryPolicy &policy,
                                uint64_t jitter_seed,
                                double *torn_fraction_out) {
  auto &injector = FaultInjector::Instance();
  if (!injector.Armed()) return Status::Ok();
  Rng rng(jitter_seed);
  return RetryWithBackoff(
      policy,
      [&]() -> Status {
        const FaultCheck fc = injector.Hit(point);
        if (!fc.fire) return Status::Ok();
        if (fc.action == FaultAction::kThrow) throw InjectedFault(fc.message);
        if (fc.action == FaultAction::kTornWrite) {
          if (torn_fraction_out != nullptr) *torn_fraction_out = fc.torn_fraction;
          return Status::Ok();
        }
        return fc.ToStatus(point);
      },
      &rng);
}

}  // namespace

LogManager::LogManager(std::string path, SettingsManager *settings)
    : path_(std::move(path)), settings_(settings) {
  if (!path_.empty()) {
    file_ = std::fopen(path_.c_str(), "wb");
    MB2_ASSERT(file_ != nullptr, "cannot open WAL file");
  }
}

LogManager::~LogManager() {
  StopFlusher();
  if (file_ != nullptr) {
    FlushNow();
    std::fclose(file_);
  }
}

Status LogManager::Serialize(const std::vector<RedoRecord> &records,
                             uint64_t txn_id) {
  if (file_ == nullptr || records.empty()) return Status::Ok();
  ObsSpan span("wal.serialize");
  static Counter &appends =
      MetricsRegistry::Instance().GetCounter("mb2_wal_appends_total");
  appends.Add();

  const Status fault = CheckFaultPointWithRetry(
      fault_point::kWalAppend, retry_policy_, txn_id ^ 0xa99e4dULL, nullptr);
  if (!fault.ok()) {
    append_errors_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }

  size_t total_bytes = 0;
  for (const auto &r : records) total_bytes += RedoRecordSize(r);
  const double interval =
      settings_->GetDouble("log_flush_interval_us");

  // Features: num_records, num_bytes, num_buffers(filled by this call),
  // interval. Buffer count amended after serialization.
  OuTrackerScope scope(OuType::kLogSerialize,
                       {static_cast<double>(records.size()),
                        static_cast<double>(total_bytes), 0.0, interval});

  std::vector<uint8_t> encoded;
  encoded.reserve(total_bytes);
  for (const auto &r : records) SerializeRedoRecord(r, txn_id, &encoded);
  WorkStats::Current().bytes_written += encoded.size();

  uint32_t buffers_sealed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t offset = 0;
    while (offset < encoded.size()) {
      if (!active_.HasSpace(1)) {
        SealActiveLocked();
        buffers_sealed++;
      }
      const size_t space = LogBuffer::kCapacity - active_.size();
      const size_t chunk = std::min(space, encoded.size() - offset);
      active_.Append(encoded.data() + offset, chunk);
      offset += chunk;
    }
    active_.num_records += static_cast<uint32_t>(records.size());
  }
  total_records_.fetch_add(records.size(), std::memory_order_relaxed);
  scope.MutableFeatures()[2] = static_cast<double>(buffers_sealed);

  // Synchronous-commit mode: the commit's bytes reach the device (through
  // fsync, so past the page cache) before the commit returns, so "committed"
  // implies "durable" — the invariant the replication failover guarantee
  // (no committed transaction lost) rests on. A failed flush re-queues the
  // buffers; surfacing the error lets callers count the commit as
  // not-yet-durable.
  if (settings_->GetInt("wal_sync_commit") != 0) {
    return FlushFilled(/*sync_device=*/true);
  }
  return Status::Ok();
}

void LogManager::SealActiveLocked() {
  filled_.push_back(std::move(active_));
  active_ = LogBuffer();
}

Status LogManager::FlushFilled(bool sync_device) {
  // flush_mutex_ spans the seal-swap *and* the device writes: without it,
  // two flushers (sync-commit callers + the background thread) could swap
  // buffer batches in one order and write them in the other, landing WAL
  // bytes on disk out of commit order — which recovery replay and
  // replication followers would consume as a corrupt/reordered stream.
  std::lock_guard<std::mutex> flush_lock(flush_mutex_);
  std::vector<LogBuffer> to_flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr) return Status::Ok();  // crashed/disabled
    if (!active_.empty()) SealActiveLocked();
    to_flush.swap(filled_);
  }
  if (to_flush.empty()) return Status::Ok();

  size_t total_bytes = 0;
  for (const auto &b : to_flush) total_bytes += b.size();

  double torn_fraction = -1.0;
  const Status fault = CheckFaultPointWithRetry(
      fault_point::kWalFlush, retry_policy_,
      total_flushed_.load(std::memory_order_relaxed) ^ 0xf1a5ULL,
      &torn_fraction);
  if (!fault.ok()) {
    // Retry budget spent: put the buffers back so nothing committed is lost;
    // a later flush (or shutdown) takes another run at the device.
    flush_errors_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    filled_.insert(filled_.begin(), std::make_move_iterator(to_flush.begin()),
                   std::make_move_iterator(to_flush.end()));
    return fault;
  }

  ObsSpan span("wal.flush");
  static Counter &flushes =
      MetricsRegistry::Instance().GetCounter("mb2_wal_flushes_total");
  static Counter &flushed_bytes =
      MetricsRegistry::Instance().GetCounter("mb2_wal_flushed_bytes_total");
  flushes.Add();
  flushed_bytes.Add(total_bytes);

  const double interval = settings_->GetDouble("log_flush_interval_us");
  OuTrackerScope scope(OuType::kLogFlush,
                       {static_cast<double>(total_bytes),
                        static_cast<double>(to_flush.size()), interval});

  if (torn_fraction >= 0.0) {
    // Simulated crash mid-write: only a prefix reaches the device and the
    // rest of the batch is gone, exactly like losing power inside fwrite.
    size_t budget = static_cast<size_t>(static_cast<double>(total_bytes) *
                                        torn_fraction);
    size_t written = 0;
    for (const auto &b : to_flush) {
      const size_t chunk = std::min(budget - written, b.size());
      if (chunk == 0) break;
      written += std::fwrite(b.data().data(), 1, chunk, file_);
      if (written >= budget) break;
    }
    std::fflush(file_);
    flush_errors_.fetch_add(1, std::memory_order_relaxed);
    total_flushed_.fetch_add(written, std::memory_order_relaxed);
    WorkStats::Current().log_bytes += written;
    return Status::IoError("torn write injected at wal.flush");
  }

  size_t written = 0;
  bool short_write = false;
  for (const auto &b : to_flush) {
    const size_t got = std::fwrite(b.data().data(), 1, b.size(), file_);
    written += got;
    if (got != b.size()) {
      short_write = true;
      break;
    }
  }
  std::fflush(file_);
  WorkStats::Current().log_bytes += written;
  total_flushed_.fetch_add(written, std::memory_order_relaxed);
  if (short_write) {
    flush_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("short write to log device");
  }
  // fflush only reaches the kernel page cache; sync-commit durability (the
  // "committed == survives power loss" claim) needs fsync to the device.
  if (sync_device && ::fsync(fileno(file_)) != 0) {
    flush_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("fsync of log device failed");
  }
  return Status::Ok();
}

Status LogManager::FlushNow() { return FlushFilled(/*sync_device=*/true); }

void LogManager::Crash() {
  StopFlusher();
  std::lock_guard<std::mutex> flush_lock(flush_mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  active_ = LogBuffer();
  filled_.clear();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status LogManager::OpenSegment(const std::string &path) {
  std::lock_guard<std::mutex> flush_lock(flush_mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("log device already open: " + path_);
  }
  if (path.empty()) return Status::InvalidArgument("empty log segment path");
  std::FILE *file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot open log segment " + path);
  // The old segment's bytes were already replayed; the new device starts a
  // fresh stream, so the buffered state must be empty (Crash() cleared it).
  active_ = LogBuffer();
  filled_.clear();
  file_ = file;
  path_ = path;
  return Status::Ok();
}

void LogManager::StartFlusher() {
  if (file_ == nullptr || running_.load()) return;
  running_.store(true);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void LogManager::StopFlusher() {
  if (!running_.load()) return;
  running_.store(false);
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void LogManager::FlusherLoop() {
  while (running_.load()) {
    const auto interval = std::chrono::microseconds(
        settings_->GetInt("log_flush_interval_us"));
    {
      std::unique_lock<std::mutex> lock(flusher_mutex_);
      flusher_cv_.wait_for(lock, interval, [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    // Errors are counted (flush_errors); the failed batch stays queued and
    // the next tick retries it. No fsync here: interval flushing is the
    // lazy-durability mode, and the sync-commit path syncs for itself.
    FlushFilled(/*sync_device=*/false);
  }
}

}  // namespace mb2
