#include "wal/log_manager.h"

#include "metrics/metrics_collector.h"
#include "metrics/work_stats.h"

namespace mb2 {

LogManager::LogManager(std::string path, SettingsManager *settings)
    : settings_(settings) {
  if (!path.empty()) {
    file_ = std::fopen(path.c_str(), "wb");
    MB2_ASSERT(file_ != nullptr, "cannot open WAL file");
  }
}

LogManager::~LogManager() {
  StopFlusher();
  if (file_ != nullptr) {
    FlushNow();
    std::fclose(file_);
  }
}

void LogManager::Serialize(const std::vector<RedoRecord> &records,
                           uint64_t txn_id) {
  if (file_ == nullptr || records.empty()) return;

  size_t total_bytes = 0;
  for (const auto &r : records) total_bytes += RedoRecordSize(r);
  const double interval =
      settings_->GetDouble("log_flush_interval_us");

  // Features: num_records, num_bytes, num_buffers(filled by this call),
  // interval. Buffer count amended after serialization.
  OuTrackerScope scope(OuType::kLogSerialize,
                       {static_cast<double>(records.size()),
                        static_cast<double>(total_bytes), 0.0, interval});

  std::vector<uint8_t> encoded;
  encoded.reserve(total_bytes);
  for (const auto &r : records) SerializeRedoRecord(r, txn_id, &encoded);
  WorkStats::Current().bytes_written += encoded.size();

  uint32_t buffers_sealed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t offset = 0;
    while (offset < encoded.size()) {
      if (!active_.HasSpace(1)) {
        SealActiveLocked();
        buffers_sealed++;
      }
      const size_t space = LogBuffer::kCapacity - active_.size();
      const size_t chunk = std::min(space, encoded.size() - offset);
      active_.Append(encoded.data() + offset, chunk);
      offset += chunk;
    }
    active_.num_records += static_cast<uint32_t>(records.size());
  }
  scope.MutableFeatures()[2] = static_cast<double>(buffers_sealed);
}

void LogManager::SealActiveLocked() {
  filled_.push_back(std::move(active_));
  active_ = LogBuffer();
}

void LogManager::FlushFilled() {
  std::vector<LogBuffer> to_flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!active_.empty()) SealActiveLocked();
    to_flush.swap(filled_);
  }
  if (to_flush.empty()) return;

  size_t total_bytes = 0;
  for (const auto &b : to_flush) total_bytes += b.size();
  const double interval = settings_->GetDouble("log_flush_interval_us");

  OuTrackerScope scope(OuType::kLogFlush,
                       {static_cast<double>(total_bytes),
                        static_cast<double>(to_flush.size()), interval});
  for (const auto &b : to_flush) {
    std::fwrite(b.data().data(), 1, b.size(), file_);
  }
  std::fflush(file_);
  WorkStats::Current().log_bytes += total_bytes;
  total_flushed_.fetch_add(total_bytes, std::memory_order_relaxed);
}

void LogManager::FlushNow() { FlushFilled(); }

void LogManager::StartFlusher() {
  if (file_ == nullptr || running_.load()) return;
  running_.store(true);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void LogManager::StopFlusher() {
  if (!running_.load()) return;
  running_.store(false);
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void LogManager::FlusherLoop() {
  while (running_.load()) {
    const auto interval = std::chrono::microseconds(
        settings_->GetInt("log_flush_interval_us"));
    {
      std::unique_lock<std::mutex> lock(flusher_mutex_);
      flusher_cv_.wait_for(lock, interval, [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    FlushFilled();
  }
}

}  // namespace mb2
