#pragma once

/// \file buffer_pool.h
/// Page cache between the table heaps and the DiskManager (DESIGN.md §4i).
/// Frames are pinned for the duration of an access (refcounted), unpinned
/// frames sit on an LRU list, and eviction writes dirty frames back through
/// the DiskManager. Capacity is the hot-tunable `buffer_pool_pages` knob,
/// re-read on every miss so a self-driving action resizes the pool without
/// a restart. When every frame is pinned the pool temporarily exceeds
/// capacity rather than deadlocking; the overshoot drains as pins release.
///
/// Hit/miss/eviction/writeback counts feed both the obs registry
/// (mb2_bufpool_*_total) and a local Stats snapshot the OU runners and
/// benches read without enabling observability.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mb2 {

class SettingsManager;

class BufferPool {
 public:
  BufferPool(DiskManager *disk, const SettingsManager *settings);
  ~BufferPool();
  MB2_DISALLOW_COPY_AND_MOVE(BufferPool);

  /// Pins page `id`, reading it from disk on a miss. `*out` stays valid
  /// until the matching Unpin. Errors leave nothing pinned.
  Status Pin(PageId id, Page **out);

  /// Releases one pin; `dirty` marks the frame for writeback on eviction.
  void Unpin(PageId id, bool dirty);

  /// Allocates a fresh page id, pins an initialized (zeroed, header-stamped)
  /// frame for it, and marks it dirty.
  Status NewPage(PageId *id, Page **out);

  /// Writes every dirty frame back to disk (frames stay resident).
  Status FlushAll();

  /// Flushes dirty frames, then evicts every unpinned frame — the cold-cache
  /// reset used by restart simulation and the cold/hot benches.
  Status DropAll();

  /// Current value of the `buffer_pool_pages` knob (>= 1).
  uint64_t CapacityPages() const;

  /// Resident frame count (may briefly exceed capacity under pin pressure).
  uint64_t ResidentPages() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };
  Stats stats() const;

  DiskManager *disk() { return disk_; }

 private:
  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    uint32_t pins = 0;
    bool dirty = false;
    /// Valid only when pins == 0 (frame is on lru_).
    std::list<PageId>::iterator lru_it;
  };

  /// Evicts LRU frames until resident count < capacity or no unpinned frame
  /// remains. Caller holds mutex_.
  Status EvictForSpaceLocked(uint64_t capacity);
  void TouchLocked(Frame *frame);

  DiskManager *disk_;
  const SettingsManager *settings_;

  mutable std::mutex mutex_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  /// Unpinned frames, least-recently-used first.
  std::list<PageId> lru_;
  Stats stats_;
};

}  // namespace mb2
