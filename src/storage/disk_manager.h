#pragma once

/// \file disk_manager.h
/// Page-granular file I/O for the disk-backed table heap (DESIGN.md §4i).
/// One DiskManager owns one heap file holding 4 KiB pages addressed by
/// PageId. Every write stamps a crc32 over the page body into the header;
/// every read verifies the checksum and the stored page id, so torn writes
/// and misdirected I/O surface as IoError instead of silent corruption.
///
/// The heap file is scratch space: WAL replay repopulates it on restart, so
/// opening truncates any existing file. Fault points `page.read` and
/// `page.write` (common/fault_injector.h) instrument both paths — arming
/// `page.write` with `torn` leaves a partial page on disk whose checksum
/// fails on the next read, the crash-mid-writeback scenario.

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "storage/page.h"

namespace mb2 {

class DiskManager {
 public:
  /// Opens (and truncates) the heap file. A failure is sticky: it is
  /// reported by status() and by every subsequent Read/Write.
  explicit DiskManager(std::string path);
  ~DiskManager();
  MB2_DISALLOW_COPY_AND_MOVE(DiskManager);

  /// The open-time status; Ok when the heap file is usable.
  const Status &status() const { return status_; }
  const std::string &path() const { return path_; }

  /// Reserves a fresh page id (the page has no on-disk bytes until the
  /// first Write).
  PageId Allocate();

  /// Pages allocated so far (allocated, not necessarily written).
  uint64_t num_pages() const;

  /// Reads page `id` into `*out`, verifying checksum and stored page id.
  /// Counts into WorkStats::page_reads and the mb2_page_read_us histogram.
  Status Read(PageId id, Page *out);

  /// Stamps the checksum into `p` and writes it at its slot in the file.
  /// Counts into WorkStats::page_writes and the mb2_page_write_us histogram.
  Status Write(PageId id, Page *p);

 private:
  std::string path_;
  Status status_;
  /// FILE* seek+transfer pairs must not interleave across threads.
  mutable std::mutex io_mutex_;
  FILE *file_ = nullptr;
  std::atomic<uint64_t> next_page_id_{0};
};

}  // namespace mb2
