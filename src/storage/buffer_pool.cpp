#include "storage/buffer_pool.h"

#include <algorithm>

#include "catalog/settings.h"
#include "obs/metrics_registry.h"

namespace mb2 {

namespace {

Counter &HitsTotal() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_bufpool_hits_total");
  return c;
}

Counter &MissesTotal() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_bufpool_misses_total");
  return c;
}

Counter &EvictionsTotal() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_bufpool_evictions_total");
  return c;
}

Counter &WritebacksTotal() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_bufpool_writebacks_total");
  return c;
}

Gauge &ResidentGauge() {
  static Gauge &g =
      MetricsRegistry::Instance().GetGauge("mb2_bufpool_resident_pages");
  return g;
}

}  // namespace

BufferPool::BufferPool(DiskManager *disk, const SettingsManager *settings)
    : disk_(disk), settings_(settings) {}

BufferPool::~BufferPool() {
  // Best-effort writeback so a clean shutdown leaves no dirty frames; errors
  // here have nowhere to surface (the heap is rebuilt from WAL anyway).
  (void)FlushAll();
}

uint64_t BufferPool::CapacityPages() const {
  const int64_t knob = settings_->GetInt("buffer_pool_pages");
  return static_cast<uint64_t>(std::max<int64_t>(1, knob));
}

uint64_t BufferPool::ResidentPages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferPool::TouchLocked(Frame *frame) {
  if (frame->pins == 0) {
    lru_.erase(frame->lru_it);
  }
  frame->pins++;
}

Status BufferPool::EvictForSpaceLocked(uint64_t capacity) {
  while (frames_.size() >= capacity && !lru_.empty()) {
    const PageId victim_id = lru_.front();
    auto it = frames_.find(victim_id);
    MB2_ASSERT(it != frames_.end(), "LRU entry without frame");
    Frame *victim = it->second.get();
    if (victim->dirty) {
      Status s = disk_->Write(victim_id, &victim->page);
      if (!s.ok()) return s;
      victim->dirty = false;
      stats_.writebacks++;
      WritebacksTotal().Add();
    }
    lru_.pop_front();
    frames_.erase(it);
    stats_.evictions++;
    EvictionsTotal().Add();
  }
  return Status::Ok();
}

Status BufferPool::Pin(PageId id, Page **out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame *frame = it->second.get();
    TouchLocked(frame);
    stats_.hits++;
    HitsTotal().Add();
    *out = &frame->page;
    return Status::Ok();
  }
  stats_.misses++;
  MissesTotal().Add();
  Status s = EvictForSpaceLocked(CapacityPages());
  if (!s.ok()) return s;
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  s = disk_->Read(id, &frame->page);
  if (!s.ok()) return s;
  frame->pins = 1;
  Frame *raw = frame.get();
  frames_.emplace(id, std::move(frame));
  ResidentGauge().Set(static_cast<double>(frames_.size()));
  *out = &raw->page;
  return Status::Ok();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = frames_.find(id);
  MB2_ASSERT(it != frames_.end(), "unpin of non-resident page");
  Frame *frame = it->second.get();
  MB2_ASSERT(frame->pins > 0, "unpin of unpinned page");
  frame->dirty = frame->dirty || dirty;
  frame->pins--;
  if (frame->pins == 0) {
    lru_.push_back(id);
    frame->lru_it = std::prev(lru_.end());
  }
}

Status BufferPool::NewPage(PageId *id, Page **out) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status s = EvictForSpaceLocked(CapacityPages());
  if (!s.ok()) return s;
  const PageId fresh = disk_->Allocate();
  auto frame = std::make_unique<Frame>();
  frame->id = fresh;
  frame->pins = 1;
  frame->dirty = true;
  page::Init(&frame->page, fresh);
  Frame *raw = frame.get();
  frames_.emplace(fresh, std::move(frame));
  ResidentGauge().Set(static_cast<double>(frames_.size()));
  *id = fresh;
  *out = &raw->page;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto &[id, frame] : frames_) {
    if (!frame->dirty) continue;
    Status s = disk_->Write(id, &frame->page);
    if (!s.ok()) return s;
    frame->dirty = false;
    stats_.writebacks++;
    WritebacksTotal().Add();
  }
  return Status::Ok();
}

Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto &[id, frame] : frames_) {
    if (!frame->dirty) continue;
    Status s = disk_->Write(id, &frame->page);
    if (!s.ok()) return s;
    frame->dirty = false;
    stats_.writebacks++;
    WritebacksTotal().Add();
  }
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second->pins == 0) {
      lru_.erase(it->second->lru_it);
      it = frames_.erase(it);
      stats_.evictions++;
      EvictionsTotal().Add();
    } else {
      ++it;
    }
  }
  ResidentGauge().Set(static_cast<double>(frames_.size()));
  return Status::Ok();
}

}  // namespace mb2
