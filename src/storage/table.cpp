#include "storage/table.h"

#include "metrics/work_stats.h"

namespace mb2 {

Table::~Table() {
  for (auto &slot : slots_) {
    VersionNode *node = slot.head.load(std::memory_order_relaxed);
    while (node != nullptr) {
      VersionNode *next = node->next;
      delete node;
      node = next;
    }
  }
}

SlotId Table::Insert(Transaction *txn, Tuple tuple) {
  auto *version = new VersionNode();
  version->owner.store(txn->txn_id(), std::memory_order_release);
  version->data = std::move(tuple);

  WorkStats &ws = WorkStats::Current();
  ws.tuples_processed++;
  ws.bytes_written += TupleSize(version->data);
  ws.allocations++;
  ws.alloc_bytes += sizeof(VersionNode) + TupleSize(version->data);

  SlotId slot;
  {
    append_latch_.LockExclusive();
    slot = next_slot_.load(std::memory_order_relaxed);
    slots_.emplace_back();
    slots_.back().head.store(version, std::memory_order_release);
    next_slot_.store(slot + 1, std::memory_order_release);
    append_latch_.UnlockExclusive();
  }

  txn->RecordWrite(WriteRecord{this, slot, version, nullptr, /*is_insert=*/true});
  txn->RecordRedo(RedoRecord{LogOpType::kInsert, table_id_, slot, version->data});
  return slot;
}

namespace {

/// An aborted version left in the chain as an invisible placeholder.
bool IsDeadVersion(const VersionNode *v) {
  return v->owner.load(std::memory_order_acquire) == kNoOwner &&
         v->begin_ts.load(std::memory_order_acquire) == 0 &&
         v->end_ts.load(std::memory_order_acquire) == 0;
}

/// First non-aborted version in the chain — the one a writer logically
/// supersedes. Conflict checks and end-timestamp stamping must target it,
/// never a dead placeholder (stamping a dead version's end would resurrect
/// it for old snapshots and orphan the true predecessor).
VersionNode *FirstLiveVersion(VersionNode *head) {
  while (head != nullptr && IsDeadVersion(head)) head = head->next;
  return head;
}

}  // namespace

Status Table::Update(Transaction *txn, SlotId slot, Tuple new_tuple) {
  TupleSlot *s = GetSlot(slot);
  SpinLatch::ScopedLock guard(&s->latch);
  VersionNode *head = s->head.load(std::memory_order_acquire);
  if (head == nullptr) return Status::NotFound("slot has no versions");
  VersionNode *live = FirstLiveVersion(head);
  if (live == nullptr) return Status::NotFound("slot has no live versions");
  const uint64_t owner = live->owner.load(std::memory_order_acquire);
  if (owner != kNoOwner && owner != txn->txn_id()) {
    WorkStats::Current().latch_waits++;
    return Status::Aborted("write-write conflict");
  }
  // A version committed after our snapshot is also a conflict under SI.
  if (owner == kNoOwner &&
      live->begin_ts.load(std::memory_order_acquire) > txn->read_ts()) {
    return Status::Aborted("snapshot too old");
  }

  auto *version = new VersionNode();
  version->owner.store(txn->txn_id(), std::memory_order_release);
  version->data = std::move(new_tuple);
  version->next = head;
  s->head.store(version, std::memory_order_release);

  WorkStats &ws = WorkStats::Current();
  ws.tuples_processed++;
  ws.bytes_written += TupleSize(version->data);
  ws.allocations++;
  ws.alloc_bytes += sizeof(VersionNode) + TupleSize(version->data);

  txn->RecordWrite(WriteRecord{this, slot, version, live, /*is_insert=*/false});
  txn->RecordRedo(RedoRecord{LogOpType::kUpdate, table_id_, slot, version->data});
  return Status::Ok();
}

Status Table::Delete(Transaction *txn, SlotId slot) {
  TupleSlot *s = GetSlot(slot);
  SpinLatch::ScopedLock guard(&s->latch);
  VersionNode *head = s->head.load(std::memory_order_acquire);
  if (head == nullptr) return Status::NotFound("slot has no versions");
  VersionNode *live = FirstLiveVersion(head);
  if (live == nullptr) return Status::NotFound("slot has no live versions");
  const uint64_t owner = live->owner.load(std::memory_order_acquire);
  if (owner != kNoOwner && owner != txn->txn_id()) {
    WorkStats::Current().latch_waits++;
    return Status::Aborted("write-write conflict");
  }
  if (owner == kNoOwner &&
      live->begin_ts.load(std::memory_order_acquire) > txn->read_ts()) {
    return Status::Aborted("snapshot too old");
  }
  if (live->deleted) return Status::NotFound("already deleted");

  auto *version = new VersionNode();
  version->owner.store(txn->txn_id(), std::memory_order_release);
  version->deleted = true;
  version->next = head;
  s->head.store(version, std::memory_order_release);

  WorkStats &ws = WorkStats::Current();
  ws.tuples_processed++;
  ws.allocations++;
  ws.alloc_bytes += sizeof(VersionNode);

  txn->RecordWrite(WriteRecord{this, slot, version, live, /*is_insert=*/false});
  txn->RecordRedo(RedoRecord{LogOpType::kDelete, table_id_, slot, {}});
  return Status::Ok();
}

bool Table::Select(const Transaction *txn, SlotId slot, Tuple *out) const {
  const VersionNode *node = slots_[slot].head.load(std::memory_order_acquire);
  WorkStats::Current().tuples_processed++;
  while (node != nullptr) {
    if (node->VisibleTo(txn->read_ts(), txn->txn_id())) {
      if (node->deleted) return false;
      *out = node->data;
      WorkStats::Current().bytes_read += TupleSize(node->data);
      return true;
    }
    node = node->next;
  }
  return false;
}

uint64_t Table::VisibleCount(uint64_t read_ts) const {
  uint64_t count = 0;
  const SlotId n = NumSlots();
  for (SlotId i = 0; i < n; i++) {
    const VersionNode *node = slots_[i].head.load(std::memory_order_acquire);
    while (node != nullptr) {
      if (node->VisibleTo(read_ts, /*reader_txn=*/0)) {
        if (!node->deleted) count++;
        break;
      }
      node = node->next;
    }
  }
  return count;
}

uint64_t Table::GarbageCollect(uint64_t oldest_active_ts,
                               uint64_t *bytes_reclaimed) {
  uint64_t unlinked = 0;
  const SlotId n = NumSlots();
  for (SlotId i = 0; i < n; i++) {
    TupleSlot *s = &slots_[i];
    SpinLatch::ScopedLock guard(&s->latch);
    VersionNode *node = s->head.load(std::memory_order_acquire);
    if (node == nullptr) continue;
    // Keep the newest version that is visible at oldest_active_ts; anything
    // strictly older can never be read again.
    VersionNode *keep_tail = node;
    while (keep_tail != nullptr) {
      const uint64_t begin = keep_tail->begin_ts.load(std::memory_order_acquire);
      const uint64_t owner = keep_tail->owner.load(std::memory_order_acquire);
      const uint64_t end = keep_tail->end_ts.load(std::memory_order_acquire);
      if (owner == kNoOwner && begin != kUncommittedTs &&
          begin <= oldest_active_ts && end > oldest_active_ts) {
        break;  // keep_tail is the last version any live reader can need
      }
      keep_tail = keep_tail->next;
    }
    if (keep_tail == nullptr) continue;
    VersionNode *garbage = keep_tail->next;
    keep_tail->next = nullptr;
    while (garbage != nullptr) {
      VersionNode *next = garbage->next;
      *bytes_reclaimed += sizeof(VersionNode) + TupleSize(garbage->data);
      delete garbage;
      unlinked++;
      garbage = next;
    }
  }
  return unlinked;
}

void Table::RollbackWrite(const WriteRecord &record) {
  // Mark the aborted version permanently invisible rather than freeing it:
  // concurrent readers may still be traversing the chain. The GC reclaims it
  // once the slot is superseded by a later committed write.
  TupleSlot *s = GetSlot(record.slot);
  SpinLatch::ScopedLock guard(&s->latch);
  record.version->begin_ts.store(0, std::memory_order_release);
  record.version->end_ts.store(0, std::memory_order_release);
  record.version->owner.store(kNoOwner, std::memory_order_release);
}

}  // namespace mb2
