#include "storage/table.h"

#include "metrics/work_stats.h"
#include "storage/buffer_pool.h"

namespace mb2 {

Table::Table(uint32_t table_id, std::string name, Schema schema,
             TableStorage storage, BufferPool *pool)
    : table_id_(table_id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      storage_(storage) {
  if (storage_ == TableStorage::kDisk) {
    MB2_ASSERT(pool != nullptr, "disk table requires a buffer pool");
    heap_ = std::make_unique<TableHeap>(pool);
  }
}

Table::~Table() {
  const SlotId n = next_slot_.load(std::memory_order_relaxed);
  for (SlotId i = 0; i < n; i++) {
    VersionNode *node = GetSlot(i)->head.load(std::memory_order_relaxed);
    while (node != nullptr) {
      VersionNode *next = node->next;
      delete node;
      node = next;
    }
  }
  for (auto &chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

Result<SlotId> Table::TryInsert(Transaction *txn, Tuple tuple) {
  auto *version = new VersionNode();
  version->owner.store(txn->txn_id(), std::memory_order_release);

  WorkStats &ws = WorkStats::Current();
  ws.tuples_processed++;
  ws.bytes_written += TupleSize(tuple);
  ws.allocations++;
  ws.alloc_bytes += sizeof(VersionNode) + TupleSize(tuple);

  if (storage_ == TableStorage::kDisk) {
    // Append the payload before publishing the version so a visible disk
    // version always has a fetchable location.
    SlotId slot;
    {
      SpinLatch::ScopedLock guard(&append_latch_);
      slot = next_slot_.load(std::memory_order_relaxed);
      Result<RowLocation> loc = heap_->AppendRow(slot, tuple);
      if (!loc.ok()) {
        delete version;
        return loc.status();
      }
      version->loc = *loc;
      const size_t k = ChunkIndex(slot);
      TupleSlot *chunk = chunks_[k].load(std::memory_order_relaxed);
      if (chunk == nullptr) {
        chunk = new TupleSlot[ChunkCapacity(k)];
        chunks_[k].store(chunk, std::memory_order_release);
      }
      chunk[slot - ChunkBase(k)].head.store(version,
                                            std::memory_order_release);
      next_slot_.store(slot + 1, std::memory_order_release);
    }
    live_rows_.fetch_add(1, std::memory_order_relaxed);
    txn->RecordWrite(WriteRecord{this, slot, version, nullptr, /*is_insert=*/true});
    txn->RecordRedo(RedoRecord{LogOpType::kInsert, table_id_, slot, std::move(tuple)});
    return slot;
  }

  version->data = std::move(tuple);
  SlotId slot;
  {
    SpinLatch::ScopedLock guard(&append_latch_);
    slot = next_slot_.load(std::memory_order_relaxed);
    const size_t k = ChunkIndex(slot);
    TupleSlot *chunk = chunks_[k].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new TupleSlot[ChunkCapacity(k)];
      chunks_[k].store(chunk, std::memory_order_release);
    }
    chunk[slot - ChunkBase(k)].head.store(version, std::memory_order_release);
    next_slot_.store(slot + 1, std::memory_order_release);
  }
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  txn->RecordWrite(WriteRecord{this, slot, version, nullptr, /*is_insert=*/true});
  txn->RecordRedo(RedoRecord{LogOpType::kInsert, table_id_, slot, version->data});
  return slot;
}

SlotId Table::Insert(Transaction *txn, Tuple tuple) {
  Result<SlotId> slot = TryInsert(txn, std::move(tuple));
  MB2_ASSERT(slot.ok(), "Insert on a failing heap; use TryInsert");
  return *slot;
}

namespace {

/// An aborted version left in the chain as an invisible placeholder.
bool IsDeadVersion(const VersionNode *v) {
  return v->owner.load(std::memory_order_acquire) == kNoOwner &&
         v->begin_ts.load(std::memory_order_acquire) == 0 &&
         v->end_ts.load(std::memory_order_acquire) == 0;
}

/// First non-aborted version in the chain — the one a writer logically
/// supersedes. Conflict checks and end-timestamp stamping must target it,
/// never a dead placeholder (stamping a dead version's end would resurrect
/// it for old snapshots and orphan the true predecessor).
VersionNode *FirstLiveVersion(VersionNode *head) {
  while (head != nullptr && IsDeadVersion(head)) head = head->next;
  return head;
}

}  // namespace

Status Table::Update(Transaction *txn, SlotId slot, Tuple new_tuple) {
  TupleSlot *s = GetSlot(slot);
  SpinLatch::ScopedLock guard(&s->latch);
  VersionNode *head = s->head.load(std::memory_order_acquire);
  if (head == nullptr) return Status::NotFound("slot has no versions");
  VersionNode *live = FirstLiveVersion(head);
  if (live == nullptr) return Status::NotFound("slot has no live versions");
  const uint64_t owner = live->owner.load(std::memory_order_acquire);
  if (owner != kNoOwner && owner != txn->txn_id()) {
    WorkStats::Current().latch_waits++;
    return Status::Aborted("write-write conflict");
  }
  // A version committed after our snapshot is also a conflict under SI.
  if (owner == kNoOwner &&
      live->begin_ts.load(std::memory_order_acquire) > txn->read_ts()) {
    return Status::Aborted("snapshot too old");
  }

  auto *version = new VersionNode();
  version->owner.store(txn->txn_id(), std::memory_order_release);
  if (storage_ == TableStorage::kDisk) {
    Result<RowLocation> loc = heap_->AppendRow(slot, new_tuple);
    if (!loc.ok()) {
      delete version;
      return loc.status();
    }
    version->loc = *loc;
  }

  WorkStats &ws = WorkStats::Current();
  ws.tuples_processed++;
  ws.bytes_written += TupleSize(new_tuple);
  ws.allocations++;
  ws.alloc_bytes += sizeof(VersionNode) + TupleSize(new_tuple);

  txn->RecordRedo(RedoRecord{LogOpType::kUpdate, table_id_, slot, new_tuple});
  if (storage_ != TableStorage::kDisk) {
    version->data = std::move(new_tuple);
  }
  version->next = head;
  s->head.store(version, std::memory_order_release);

  txn->RecordWrite(WriteRecord{this, slot, version, live, /*is_insert=*/false});
  return Status::Ok();
}

Status Table::Delete(Transaction *txn, SlotId slot) {
  TupleSlot *s = GetSlot(slot);
  SpinLatch::ScopedLock guard(&s->latch);
  VersionNode *head = s->head.load(std::memory_order_acquire);
  if (head == nullptr) return Status::NotFound("slot has no versions");
  VersionNode *live = FirstLiveVersion(head);
  if (live == nullptr) return Status::NotFound("slot has no live versions");
  const uint64_t owner = live->owner.load(std::memory_order_acquire);
  if (owner != kNoOwner && owner != txn->txn_id()) {
    WorkStats::Current().latch_waits++;
    return Status::Aborted("write-write conflict");
  }
  if (owner == kNoOwner &&
      live->begin_ts.load(std::memory_order_acquire) > txn->read_ts()) {
    return Status::Aborted("snapshot too old");
  }
  if (live->deleted) return Status::NotFound("already deleted");

  auto *version = new VersionNode();
  version->owner.store(txn->txn_id(), std::memory_order_release);
  version->deleted = true;
  version->next = head;
  s->head.store(version, std::memory_order_release);
  live_rows_.fetch_sub(1, std::memory_order_relaxed);

  WorkStats &ws = WorkStats::Current();
  ws.tuples_processed++;
  ws.allocations++;
  ws.alloc_bytes += sizeof(VersionNode);

  txn->RecordWrite(WriteRecord{this, slot, version, live, /*is_insert=*/false});
  txn->RecordRedo(RedoRecord{LogOpType::kDelete, table_id_, slot, {}});
  return Status::Ok();
}

bool Table::Select(const Transaction *txn, SlotId slot, Tuple *out) const {
  const VersionNode *node = Head(slot);
  WorkStats::Current().tuples_processed++;
  while (node != nullptr) {
    if (node->VisibleTo(txn->read_ts(), txn->txn_id())) {
      if (node->deleted) return false;
      if (storage_ == TableStorage::kDisk) {
        if (!heap_->FetchRow(node->loc, out).ok()) return false;
      } else {
        *out = node->data;
      }
      WorkStats::Current().bytes_read += TupleSize(*out);
      return true;
    }
    node = node->next;
  }
  return false;
}

bool Table::ReadVisible(SlotId slot, uint64_t read_ts, Tuple *out) const {
  const VersionNode *node = Head(slot);
  while (node != nullptr) {
    if (node->VisibleTo(read_ts, /*reader_txn=*/0)) {
      if (node->deleted) return false;
      if (storage_ == TableStorage::kDisk) {
        return heap_->FetchRow(node->loc, out).ok();
      }
      *out = node->data;
      return true;
    }
    node = node->next;
  }
  return false;
}

uint64_t Table::VisibleCount(uint64_t read_ts) const {
  uint64_t count = 0;
  const SlotId n = NumSlots();
  for (SlotId i = 0; i < n; i++) {
    const VersionNode *node = Head(i);
    while (node != nullptr) {
      if (node->VisibleTo(read_ts, /*reader_txn=*/0)) {
        if (!node->deleted) count++;
        break;
      }
      node = node->next;
    }
  }
  return count;
}

uint64_t Table::GarbageCollect(uint64_t oldest_active_ts,
                               uint64_t *bytes_reclaimed) {
  uint64_t unlinked = 0;
  const SlotId n = NumSlots();
  for (SlotId i = 0; i < n; i++) {
    TupleSlot *s = GetSlot(i);
    SpinLatch::ScopedLock guard(&s->latch);
    VersionNode *node = s->head.load(std::memory_order_acquire);
    if (node == nullptr) continue;
    // Keep the newest version that is visible at oldest_active_ts; anything
    // strictly older can never be read again.
    VersionNode *keep_tail = node;
    while (keep_tail != nullptr) {
      const uint64_t begin = keep_tail->begin_ts.load(std::memory_order_acquire);
      const uint64_t owner = keep_tail->owner.load(std::memory_order_acquire);
      const uint64_t end = keep_tail->end_ts.load(std::memory_order_acquire);
      if (owner == kNoOwner && begin != kUncommittedTs &&
          begin <= oldest_active_ts && end > oldest_active_ts) {
        break;  // keep_tail is the last version any live reader can need
      }
      keep_tail = keep_tail->next;
    }
    if (keep_tail == nullptr) continue;
    VersionNode *garbage = keep_tail->next;
    keep_tail->next = nullptr;
    while (garbage != nullptr) {
      VersionNode *next = garbage->next;
      *bytes_reclaimed += sizeof(VersionNode) + TupleSize(garbage->data);
      delete garbage;
      unlinked++;
      garbage = next;
    }
  }
  return unlinked;
}

void Table::RollbackWrite(const WriteRecord &record) {
  // Mark the aborted version permanently invisible rather than freeing it:
  // concurrent readers may still be traversing the chain. The GC reclaims it
  // once the slot is superseded by a later committed write. (A disk table's
  // heap row stays orphaned in its page until restart — nothing references
  // it.)
  TupleSlot *s = GetSlot(record.slot);
  SpinLatch::ScopedLock guard(&s->latch);
  record.version->begin_ts.store(0, std::memory_order_release);
  record.version->end_ts.store(0, std::memory_order_release);
  record.version->owner.store(kNoOwner, std::memory_order_release);
  if (record.is_insert) {
    live_rows_.fetch_sub(1, std::memory_order_relaxed);
  } else if (record.version->deleted) {
    live_rows_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mb2
