#pragma once

/// \file version.h
/// MVCC version-chain node. Each tuple slot points to a newest-first chain
/// of versions; a version is visible to a reader at timestamp `ts` when
/// begin_ts <= ts < end_ts (or when the reader owns the uncommitted write).

#include <atomic>
#include <cstdint>

#include "common/value.h"

namespace mb2 {

/// Timestamp sentinel for not-yet-committed versions.
constexpr uint64_t kUncommittedTs = UINT64_MAX;
/// Timestamp sentinel for "still live" (no successor version).
constexpr uint64_t kInfinityTs = UINT64_MAX - 1;
/// Owner id meaning "no uncommitted writer".
constexpr uint64_t kNoOwner = 0;

struct VersionNode {
  std::atomic<uint64_t> begin_ts{kUncommittedTs};
  std::atomic<uint64_t> end_ts{kInfinityTs};
  /// Transaction id of the uncommitted writer; kNoOwner once resolved.
  std::atomic<uint64_t> owner{kNoOwner};
  bool deleted = false;  ///< tombstone version (logical delete)
  Tuple data;
  VersionNode *next = nullptr;  ///< older version

  /// Visibility test for a reader.
  bool VisibleTo(uint64_t read_ts, uint64_t reader_txn) const {
    const uint64_t o = owner.load(std::memory_order_acquire);
    if (o != kNoOwner) return o == reader_txn;
    const uint64_t begin = begin_ts.load(std::memory_order_acquire);
    const uint64_t end = end_ts.load(std::memory_order_acquire);
    return begin <= read_ts && read_ts < end;
  }
};

using SlotId = uint64_t;

}  // namespace mb2
