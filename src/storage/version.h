#pragma once

/// \file version.h
/// MVCC version-chain node. Each tuple slot points to a newest-first chain
/// of versions; a version is visible to a reader at timestamp `ts` when
/// begin_ts <= ts < end_ts (or when the reader owns the uncommitted write).

#include <atomic>
#include <cstdint>

#include "common/value.h"

namespace mb2 {

/// Timestamp sentinel for not-yet-committed versions.
constexpr uint64_t kUncommittedTs = UINT64_MAX;
/// Timestamp sentinel for "still live" (no successor version).
constexpr uint64_t kInfinityTs = UINT64_MAX - 1;
/// Owner id meaning "no uncommitted writer".
constexpr uint64_t kNoOwner = 0;

/// Identifier of one 4 KiB heap page in a table's disk heap file.
using PageId = uint64_t;
constexpr PageId kInvalidPageId = UINT64_MAX;

/// Where a disk-backed table stores a version's payload: (page, row index
/// within the page). Memory-table versions and tombstones carry the invalid
/// sentinel and keep their payload inline in `data`.
struct RowLocation {
  PageId page_id = kInvalidPageId;
  uint32_t index = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const RowLocation &o) const {
    return page_id == o.page_id && index == o.index;
  }
};

struct VersionNode {
  std::atomic<uint64_t> begin_ts{kUncommittedTs};
  std::atomic<uint64_t> end_ts{kInfinityTs};
  /// Transaction id of the uncommitted writer; kNoOwner once resolved.
  std::atomic<uint64_t> owner{kNoOwner};
  bool deleted = false;  ///< tombstone version (logical delete)
  Tuple data;            ///< inline payload (memory tables); empty for disk rows
  RowLocation loc;       ///< heap payload location (disk tables only)
  VersionNode *next = nullptr;  ///< older version

  /// Visibility test for a reader.
  bool VisibleTo(uint64_t read_ts, uint64_t reader_txn) const {
    const uint64_t o = owner.load(std::memory_order_acquire);
    if (o != kNoOwner) return o == reader_txn;
    const uint64_t begin = begin_ts.load(std::memory_order_acquire);
    const uint64_t end = end_ts.load(std::memory_order_acquire);
    return begin <= read_ts && read_ts < end;
  }
};

using SlotId = uint64_t;

}  // namespace mb2
