#include "storage/table_heap.h"

namespace mb2 {

Result<RowLocation> TableHeap::AppendRow(SlotId slot, const Tuple &row) {
  if (page::RowBytes(row) > kPagePayloadBytes) {
    return Status::InvalidArgument(
        "row of " + std::to_string(page::RowBytes(row)) +
        " bytes exceeds heap page payload capacity");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pages_.empty()) {
    const PageId tail_id = pages_.back();
    Page *page = nullptr;
    Status s = pool_->Pin(tail_id, &page);
    if (!s.ok()) return s;
    if (page::AppendRow(page, slot, row)) {
      const RowLocation loc{tail_id, tail_rows_};
      tail_rows_++;
      pool_->Unpin(tail_id, /*dirty=*/true);
      return loc;
    }
    pool_->Unpin(tail_id, /*dirty=*/false);  // full; fall through to a new page
  }
  PageId fresh = kInvalidPageId;
  Page *page = nullptr;
  Status s = pool_->NewPage(&fresh, &page);
  if (!s.ok()) return s;
  const bool appended = page::AppendRow(page, slot, row);
  MB2_ASSERT(appended, "row must fit an empty page");
  pool_->Unpin(fresh, /*dirty=*/true);
  pages_.push_back(fresh);
  tail_rows_ = 1;
  return RowLocation{fresh, 0};
}

Status TableHeap::FetchRow(const RowLocation &loc, Tuple *out) {
  std::lock_guard<std::mutex> lock(mutex_);
  Page *page = nullptr;
  Status s = pool_->Pin(loc.page_id, &page);
  if (!s.ok()) return s;
  s = page::DecodeRowAt(*page, loc.index, out);
  pool_->Unpin(loc.page_id, /*dirty=*/false);
  return s;
}

Status TableHeap::ScanRows(std::vector<HeapRow> *out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const PageId id : pages_) {
    Page *page = nullptr;
    Status s = pool_->Pin(id, &page);
    if (!s.ok()) return s;
    s = page::DecodeRows(*page, id, out);
    pool_->Unpin(id, /*dirty=*/false);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

uint64_t TableHeap::NumPages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

}  // namespace mb2
