#include "storage/page.h"

#include <cstring>

namespace mb2::page {

namespace {

template <typename T>
void PutRaw(uint8_t *dst, T v) {
  std::memcpy(dst, &v, sizeof(T));
}

template <typename T>
T GetRaw(const uint8_t *src) {
  T v{};
  std::memcpy(&v, src, sizeof(T));
  return v;
}

size_t ValueBytes(const Value &v) {
  switch (v.type()) {
    case TypeId::kInteger:
    case TypeId::kDouble:
      return 1 + 8;
    case TypeId::kVarchar:
      return 1 + 4 + v.AsVarchar().size();
  }
  return 9;
}

/// Encodes one value at `dst`; returns bytes written.
size_t PutValue(uint8_t *dst, const Value &v) {
  dst[0] = static_cast<uint8_t>(v.type());
  switch (v.type()) {
    case TypeId::kInteger:
      PutRaw<int64_t>(dst + 1, v.AsInt());
      return 9;
    case TypeId::kDouble:
      PutRaw<double>(dst + 1, v.AsDouble());
      return 9;
    case TypeId::kVarchar: {
      const std::string &s = v.AsVarchar();
      PutRaw<uint32_t>(dst + 1, static_cast<uint32_t>(s.size()));
      std::memcpy(dst + 5, s.data(), s.size());
      return 5 + s.size();
    }
  }
  return 0;
}

/// Decodes one value from [src, end); advances *src. False on overrun.
bool GetValue(const uint8_t **src, const uint8_t *end, Value *out) {
  if (*src + 1 > end) return false;
  const auto type = static_cast<TypeId>((*src)[0]);
  switch (type) {
    case TypeId::kInteger:
      if (*src + 9 > end) return false;
      *out = Value::Integer(GetRaw<int64_t>(*src + 1));
      *src += 9;
      return true;
    case TypeId::kDouble:
      if (*src + 9 > end) return false;
      *out = Value::Double(GetRaw<double>(*src + 1));
      *src += 9;
      return true;
    case TypeId::kVarchar: {
      if (*src + 5 > end) return false;
      const uint32_t len = GetRaw<uint32_t>(*src + 1);
      if (*src + 5 + len > end) return false;
      *out = Value::Varchar(
          std::string(reinterpret_cast<const char *>(*src + 5), len));
      *src += 5 + len;
      return true;
    }
  }
  return false;
}

/// Decodes one row record starting at *src; advances past it.
bool GetRowRecord(const uint8_t **src, const uint8_t *end, SlotId *slot,
                  Tuple *row) {
  if (*src + 12 > end) return false;
  *slot = GetRaw<uint64_t>(*src);
  const uint32_t nvals = GetRaw<uint32_t>(*src + 8);
  *src += 12;
  // A value is at least 9 bytes; reject counts the region cannot hold.
  if (nvals > (end - *src) / 9 + 1) return false;
  row->clear();
  row->reserve(nvals);
  for (uint32_t i = 0; i < nvals; i++) {
    Value v;
    if (!GetValue(src, end, &v)) return false;
    row->push_back(std::move(v));
  }
  return true;
}

}  // namespace

void Init(Page *p, PageId id) {
  std::memset(p->bytes, 0, kPageSize);
  PutRaw<uint64_t>(p->bytes + 4, id);
  PutRaw<uint32_t>(p->bytes + 12, 0);
  PutRaw<uint32_t>(p->bytes + 16, static_cast<uint32_t>(kPageHeaderSize));
}

PageId Id(const Page &p) { return GetRaw<uint64_t>(p.bytes + 4); }
uint32_t NumRows(const Page &p) { return GetRaw<uint32_t>(p.bytes + 12); }
uint32_t UsedBytes(const Page &p) { return GetRaw<uint32_t>(p.bytes + 16); }

size_t RowBytes(const Tuple &row) {
  size_t size = 8 + 4;
  for (const auto &v : row) size += ValueBytes(v);
  return size;
}

bool AppendRow(Page *p, SlotId slot, const Tuple &row) {
  const uint32_t used = UsedBytes(*p);
  const size_t need = RowBytes(row);
  if (used + need > kPageSize) return false;
  uint8_t *dst = p->bytes + used;
  PutRaw<uint64_t>(dst, slot);
  PutRaw<uint32_t>(dst + 8, static_cast<uint32_t>(row.size()));
  dst += 12;
  for (const auto &v : row) dst += PutValue(dst, v);
  PutRaw<uint32_t>(p->bytes + 12, NumRows(*p) + 1);
  PutRaw<uint32_t>(p->bytes + 16, static_cast<uint32_t>(used + need));
  return true;
}

Status DecodeRows(const Page &p, PageId page_id, std::vector<HeapRow> *out) {
  const uint32_t used = UsedBytes(p);
  const uint32_t nrows = NumRows(p);
  if (used < kPageHeaderSize || used > kPageSize) {
    return Status::IoError("heap page " + std::to_string(page_id) +
                              ": bad used-bytes header");
  }
  const uint8_t *src = p.bytes + kPageHeaderSize;
  const uint8_t *end = p.bytes + used;
  out->reserve(out->size() + nrows);
  for (uint32_t i = 0; i < nrows; i++) {
    HeapRow r;
    if (!GetRowRecord(&src, end, &r.slot, &r.row)) {
      return Status::IoError("heap page " + std::to_string(page_id) +
                                ": truncated row record " + std::to_string(i));
    }
    r.loc = RowLocation{page_id, i};
    out->push_back(std::move(r));
  }
  return Status::Ok();
}

Status DecodeRowAt(const Page &p, uint32_t index, Tuple *out) {
  const uint32_t used = UsedBytes(p);
  const uint32_t nrows = NumRows(p);
  if (index >= nrows) {
    return Status::IoError("heap page " + std::to_string(Id(p)) +
                              ": row index " + std::to_string(index) +
                              " out of range");
  }
  if (used < kPageHeaderSize || used > kPageSize) {
    return Status::IoError("heap page " + std::to_string(Id(p)) +
                              ": bad used-bytes header");
  }
  const uint8_t *src = p.bytes + kPageHeaderSize;
  const uint8_t *end = p.bytes + used;
  SlotId slot = 0;
  Tuple row;
  for (uint32_t i = 0; i <= index; i++) {
    if (!GetRowRecord(&src, end, &slot, &row)) {
      return Status::IoError("heap page " + std::to_string(Id(p)) +
                                ": truncated row record " + std::to_string(i));
    }
  }
  *out = std::move(row);
  return Status::Ok();
}

}  // namespace mb2::page
