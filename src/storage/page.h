#pragma once

/// \file page.h
/// On-disk page format for the disk-backed table heap (DESIGN.md §4i).
/// Pages are 4 KiB, checksummed, and append-only within: committed and
/// uncommitted row payloads are serialized into the page in arrival order,
/// each prefixed with the tuple slot it belongs to. Visibility is NOT a page
/// concern — the in-memory MVCC version chains decide which heap row (if
/// any) a reader sees; the page only stores payload bytes.
///
/// Layout:
///   [0..4)    crc32 over bytes [4..kPageSize)  (set/verified by DiskManager)
///   [4..12)   page id (catches misdirected I/O)
///   [12..16)  row count
///   [16..20)  used bytes (next append offset)
///   [20..)    rows: [slot u64][num_values u32][values...]
/// Values use the WAL's tag+payload encoding (1-byte TypeId, then the
/// fixed-width payload or u32-length-prefixed varchar bytes).

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/version.h"

namespace mb2 {

constexpr size_t kPageSize = 4096;
constexpr size_t kPageHeaderSize = 20;
/// Payload capacity of one page.
constexpr size_t kPagePayloadBytes = kPageSize - kPageHeaderSize;

struct Page {
  uint8_t bytes[kPageSize];
};

/// One decoded heap row: the tuple slot it belongs to, its location (so the
/// scanner can match it against the slot's visible version), and the payload.
struct HeapRow {
  SlotId slot = 0;
  RowLocation loc;
  Tuple row;
};

namespace page {

/// Zero-initializes a page and stamps its header.
void Init(Page *p, PageId id);

PageId Id(const Page &p);
uint32_t NumRows(const Page &p);
uint32_t UsedBytes(const Page &p);

/// Serialized size of one row record (slot prefix included).
size_t RowBytes(const Tuple &row);

/// Appends a row record; returns false when the page lacks space (the
/// caller moves to a fresh page). The row index within the page is
/// NumRows(p) before the call.
bool AppendRow(Page *p, SlotId slot, const Tuple &row);

/// Decodes every row record in the page. `page_id` fills each HeapRow's
/// location. Errors on structural corruption (a record overrunning the
/// used region) — checksum validation is the DiskManager's job.
Status DecodeRows(const Page &p, PageId page_id, std::vector<HeapRow> *out);

/// Decodes just the row at `index`; errors when out of range or corrupt.
Status DecodeRowAt(const Page &p, uint32_t index, Tuple *out);

}  // namespace page

}  // namespace mb2
