#include "storage/disk_manager.h"

#include <cstring>

#include "common/checksum.h"
#include "common/fault_injector.h"
#include "metrics/metrics_collector.h"
#include "metrics/work_stats.h"
#include "obs/metrics_registry.h"

namespace mb2 {

namespace {

Histogram &PageReadUs() {
  static Histogram &h =
      MetricsRegistry::Instance().GetHistogram("mb2_page_read_us");
  return h;
}

Histogram &PageWriteUs() {
  static Histogram &h =
      MetricsRegistry::Instance().GetHistogram("mb2_page_write_us");
  return h;
}

/// Returns true (and the erroring status) when `point` fires. kDelay fires
/// are absorbed inside Hit(); kTornWrite is handled by the write path itself.
bool CheckFaultPoint(const char *point, Status *out, FaultCheck *check) {
  auto &fi = FaultInjector::Instance();
  if (!fi.Armed()) return false;
  *check = fi.Hit(point);
  if (!check->fire) return false;
  if (check->action == FaultAction::kThrow) throw InjectedFault(check->message);
  if (check->action == FaultAction::kTornWrite) return false;  // caller handles
  *out = check->ToStatus(point);
  return true;
}

}  // namespace

DiskManager::DiskManager(std::string path) : path_(std::move(path)) {
  // Truncate: heap contents are rebuilt by WAL replay on restart, and stale
  // pages from a previous incarnation must not be readable.
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    status_ = Status::IoError("open heap file '" + path_ + "' failed");
  }
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId DiskManager::Allocate() {
  return next_page_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t DiskManager::num_pages() const {
  return next_page_id_.load(std::memory_order_relaxed);
}

Status DiskManager::Read(PageId id, Page *out) {
  if (!status_.ok()) return status_;
  if (id >= num_pages()) {
    return Status::InvalidArgument("heap page " + std::to_string(id) +
                                   " was never allocated");
  }
  Status fault_status;
  FaultCheck check;
  if (CheckFaultPoint(fault_point::kPageRead, &fault_status, &check)) {
    return fault_status;
  }
  const int64_t start_us = NowMicros();
  {
    std::lock_guard<std::mutex> lock(io_mutex_);
    if (std::fseek(file_, static_cast<long>(id * kPageSize), SEEK_SET) != 0) {
      return Status::IoError("seek to heap page " + std::to_string(id) +
                             " failed");
    }
    if (std::fread(out->bytes, 1, kPageSize, file_) != kPageSize) {
      return Status::IoError("short read of heap page " + std::to_string(id));
    }
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, out->bytes, sizeof(stored_crc));
  const uint32_t computed_crc = Crc32(out->bytes + 4, kPageSize - 4);
  if (stored_crc != computed_crc) {
    return Status::IoError("heap page " + std::to_string(id) +
                           ": checksum mismatch (torn or corrupt write)");
  }
  if (page::Id(*out) != id) {
    return Status::IoError("heap page " + std::to_string(id) +
                           ": stored id " + std::to_string(page::Id(*out)) +
                           " (misdirected I/O)");
  }
  WorkStats::Current().page_reads++;
  WorkStats::Current().bytes_read += kPageSize;
  PageReadUs().Observe(static_cast<double>(NowMicros() - start_us));
  return Status::Ok();
}

Status DiskManager::Write(PageId id, Page *p) {
  if (!status_.ok()) return status_;
  if (id >= num_pages()) {
    return Status::InvalidArgument("heap page " + std::to_string(id) +
                                   " was never allocated");
  }
  Status fault_status;
  FaultCheck check;
  if (CheckFaultPoint(fault_point::kPageWrite, &fault_status, &check)) {
    return fault_status;
  }
  const uint32_t crc = Crc32(p->bytes + 4, kPageSize - 4);
  std::memcpy(p->bytes, &crc, sizeof(crc));
  size_t write_bytes = kPageSize;
  const bool torn = check.fire && check.action == FaultAction::kTornWrite;
  if (torn) {
    write_bytes = static_cast<size_t>(kPageSize * check.torn_fraction);
  }
  const int64_t start_us = NowMicros();
  {
    std::lock_guard<std::mutex> lock(io_mutex_);
    if (std::fseek(file_, static_cast<long>(id * kPageSize), SEEK_SET) != 0) {
      return Status::IoError("seek to heap page " + std::to_string(id) +
                             " failed");
    }
    if (std::fwrite(p->bytes, 1, write_bytes, file_) != write_bytes) {
      return Status::IoError("short write of heap page " + std::to_string(id));
    }
    std::fflush(file_);
  }
  if (torn) {
    return Status::IoError("fault '" + std::string(fault_point::kPageWrite) +
                           "': torn write of heap page " + std::to_string(id));
  }
  WorkStats::Current().page_writes++;
  WorkStats::Current().bytes_written += kPageSize;
  PageWriteUs().Observe(static_cast<double>(NowMicros() - start_us));
  return Status::Ok();
}

}  // namespace mb2
