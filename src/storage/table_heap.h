#pragma once

/// \file table_heap.h
/// Per-table payload heap for disk-backed tables (DESIGN.md §4i). Version
/// payloads are appended to 4 KiB pages obtained from the shared BufferPool;
/// the in-memory MVCC version chains keep a RowLocation instead of an inline
/// tuple, and visibility remains entirely the version chains' concern. The
/// heap is append-only: updates append the new payload, deletes write no
/// payload (tombstone versions live only in the chain), and space held by
/// GC'd versions is not reclaimed — the WAL is the durability story, and a
/// restart replays it into a fresh heap.
///
/// All operations serialize on one mutex. That makes concurrent appenders
/// and scanners safe at the cost of heap-level parallelism — an accepted
/// tradeoff at this engine's scale (the buffer pool below has its own lock,
/// and page I/O dominates).

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace mb2 {

class TableHeap {
 public:
  explicit TableHeap(BufferPool *pool) : pool_(pool) {}
  MB2_DISALLOW_COPY_AND_MOVE(TableHeap);

  /// Appends one row payload for `slot`, returning where it landed.
  Result<RowLocation> AppendRow(SlotId slot, const Tuple &row);

  /// Reads back the payload at `loc`.
  Status FetchRow(const RowLocation &loc, Tuple *out);

  /// Decodes every row record of every page into `*out`, page-sequentially.
  /// Output order is (page, index) append order, not slot order. The caller
  /// filters by MVCC visibility (matching each row's location against the
  /// slot's visible version).
  Status ScanRows(std::vector<HeapRow> *out);

  /// Pages this table's heap occupies.
  uint64_t NumPages() const;

  BufferPool *pool() { return pool_; }

 private:
  BufferPool *pool_;

  mutable std::mutex mutex_;
  /// This table's pages, in append order. Page ids come from the shared
  /// DiskManager, so they are not contiguous across tables.
  std::vector<PageId> pages_;
  /// Rows already appended to the tail page (index of the next append).
  uint32_t tail_rows_ = 0;
};

}  // namespace mb2
