#pragma once

/// \file table.h
/// MVCC row store. Each tuple slot holds a newest-first version chain;
/// write-write conflicts abort the second writer (first-writer-wins); MB2
/// does not model conflict aborts (Sec 3), and the bundled workloads are
/// partitioned to make them rare, but the engine still handles them.
///
/// Slots live in a latch-free segmented directory: a spine of atomically
/// published chunk pointers whose sizes double (64, 128, 256, ...), so slot
/// addresses are stable forever and readers index the directory with plain
/// acquire loads — no latch shared with appenders. (The previous deque
/// needed the append latch on every read to be safe against concurrent
/// growth; unlatched reads raced on the deque's internal bookkeeping.)
/// Insert publishes the chunk pointer and the slot's head before advancing
/// `next_slot_` with release order, so any slot below NumSlots() is fully
/// readable.
///
/// Storage is per-table (DESIGN.md §4i): kMemory keeps version payloads
/// inline in the chain nodes; kDisk appends payloads to a TableHeap of
/// 4 KiB buffer-pool-cached pages and the chain nodes carry RowLocations.
/// Visibility logic is identical for both — only where payload bytes live
/// differs.

#include <atomic>
#include <memory>
#include <string>

#include "catalog/schema.h"
#include "common/latch.h"
#include "common/status.h"
#include "storage/table_heap.h"
#include "storage/version.h"
#include "txn/transaction.h"

namespace mb2 {

class BufferPool;

/// Where a table keeps version payloads.
enum class TableStorage { kMemory = 0, kDisk = 1 };

class Table {
 public:
  /// `pool` is required (non-null) for kDisk tables, ignored for kMemory.
  Table(uint32_t table_id, std::string name, Schema schema,
        TableStorage storage = TableStorage::kMemory,
        BufferPool *pool = nullptr);
  ~Table();
  MB2_DISALLOW_COPY_AND_MOVE(Table);

  uint32_t table_id() const { return table_id_; }
  const std::string &name() const { return name_; }
  const Schema &schema() const { return schema_; }
  TableStorage storage() const { return storage_; }
  /// The payload heap; nullptr for memory tables.
  TableHeap *heap() const { return heap_.get(); }

  /// Appends a new tuple; visible to others after the txn commits. Errors
  /// (heap I/O on disk tables) surface as a Status instead of a slot.
  Result<SlotId> TryInsert(Transaction *txn, Tuple tuple);

  /// TryInsert for callers that cannot fail (memory tables, loaders).
  SlotId Insert(Transaction *txn, Tuple tuple);

  /// Installs a new version for the slot. Returns Aborted on a write-write
  /// conflict (caller must abort the transaction).
  Status Update(Transaction *txn, SlotId slot, Tuple new_tuple);

  /// Installs a tombstone version.
  Status Delete(Transaction *txn, SlotId slot);

  /// Reads the version of `slot` visible to the transaction. Returns false
  /// when no visible (live) version exists, or — disk tables only — when
  /// the payload fetch fails.
  bool Select(const Transaction *txn, SlotId slot, Tuple *out) const;

  /// Transaction-less committed read at `read_ts` (estimator sampling,
  /// index builds). Returns false when no committed live version exists.
  bool ReadVisible(SlotId slot, uint64_t read_ts, Tuple *out) const;

  /// Number of slots ever allocated (including logically deleted ones).
  SlotId NumSlots() const { return next_slot_.load(std::memory_order_acquire); }

  /// Exact count of visible tuples at the given timestamp — an O(n) chain
  /// walk; planning uses ApproxLiveRows() instead.
  uint64_t VisibleCount(uint64_t read_ts) const;

  /// O(1) approximate live-row count maintained on insert/delete/rollback.
  /// Counts uncommitted inserts and deletes eagerly, so it can deviate from
  /// VisibleCount() by the number of in-flight writers' rows.
  uint64_t ApproxLiveRows() const {
    const int64_t n = live_rows_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<uint64_t>(n) : 0;
  }

  /// Garbage collection: unlink committed versions no longer visible to any
  /// transaction at or after `oldest_active_ts`. Returns versions unlinked
  /// and adds reclaimed bytes to *bytes_reclaimed. (Disk tables reclaim the
  /// chain nodes only; heap page space is append-only until restart.)
  uint64_t GarbageCollect(uint64_t oldest_active_ts, uint64_t *bytes_reclaimed);

  /// Direct head access for scans (read-only). Safe concurrent with
  /// appends for any slot < NumSlots().
  const VersionNode *Head(SlotId slot) const {
    return GetSlot(slot)->head.load(std::memory_order_acquire);
  }

  /// Rolls back a write record (called by the txn manager on abort).
  void RollbackWrite(const WriteRecord &record);

 private:
  struct TupleSlot {
    SpinLatch latch;
    std::atomic<VersionNode *> head{nullptr};
  };

  /// Chunk 0 holds kBaseChunkSlots slots; each later chunk doubles. 26
  /// chunks cover 64 * (2^26 - 1) ≈ 4.2e9 slots.
  static constexpr SlotId kBaseChunkSlots = 64;
  static constexpr size_t kMaxChunks = 26;

  /// Slots preceding chunk k across all earlier chunks.
  static constexpr SlotId ChunkBase(size_t k) {
    return kBaseChunkSlots * ((SlotId{1} << k) - 1);
  }
  static constexpr SlotId ChunkCapacity(size_t k) {
    return kBaseChunkSlots << k;
  }
  static size_t ChunkIndex(SlotId slot) {
    const uint64_t q = slot / kBaseChunkSlots + 1;
    return 63 - static_cast<size_t>(__builtin_clzll(q));
  }

  /// Resolves a slot's stable address. Only valid for slot < NumSlots()
  /// (readers) or while holding the append latch (the appender).
  TupleSlot *GetSlot(SlotId slot) const {
    const size_t k = ChunkIndex(slot);
    TupleSlot *chunk = chunks_[k].load(std::memory_order_acquire);
    return &chunk[slot - ChunkBase(k)];
  }

  uint32_t table_id_;
  std::string name_;
  Schema schema_;
  TableStorage storage_;
  std::unique_ptr<TableHeap> heap_;

  /// Serializes appenders (slot allocation + chunk growth). Readers never
  /// take it — chunk pointers and next_slot_ are release-published.
  SpinLatch append_latch_;
  std::atomic<TupleSlot *> chunks_[kMaxChunks] = {};
  std::atomic<SlotId> next_slot_{0};
  /// Approximate live rows; see ApproxLiveRows().
  std::atomic<int64_t> live_rows_{0};
};

}  // namespace mb2
