#pragma once

/// \file table.h
/// In-memory MVCC row store. Slots live in a deque so addresses stay stable
/// under concurrent appends; each slot holds a newest-first version chain.
/// Write-write conflicts abort the second writer (first-writer-wins); MB2
/// does not model conflict aborts (Sec 3), and the bundled workloads are
/// partitioned to make them rare, but the engine still handles them.

#include <atomic>
#include <deque>
#include <string>

#include "catalog/schema.h"
#include "common/latch.h"
#include "common/status.h"
#include "storage/version.h"
#include "txn/transaction.h"

namespace mb2 {

class Table {
 public:
  Table(uint32_t table_id, std::string name, Schema schema)
      : table_id_(table_id), name_(std::move(name)), schema_(std::move(schema)) {}
  ~Table();
  MB2_DISALLOW_COPY_AND_MOVE(Table);

  uint32_t table_id() const { return table_id_; }
  const std::string &name() const { return name_; }
  const Schema &schema() const { return schema_; }

  /// Appends a new tuple; visible to others after the txn commits.
  SlotId Insert(Transaction *txn, Tuple tuple);

  /// Installs a new version for the slot. Returns Aborted on a write-write
  /// conflict (caller must abort the transaction).
  Status Update(Transaction *txn, SlotId slot, Tuple new_tuple);

  /// Installs a tombstone version.
  Status Delete(Transaction *txn, SlotId slot);

  /// Reads the version of `slot` visible to the transaction. Returns false
  /// when no visible (live) version exists.
  bool Select(const Transaction *txn, SlotId slot, Tuple *out) const;

  /// Number of slots ever allocated (including logically deleted ones).
  SlotId NumSlots() const { return next_slot_.load(std::memory_order_acquire); }

  /// Count of currently visible tuples at the given timestamp (O(n); used
  /// by the cardinality estimator's table statistics).
  uint64_t VisibleCount(uint64_t read_ts) const;

  /// Garbage collection: unlink committed versions no longer visible to any
  /// transaction at or after `oldest_active_ts`. Returns versions unlinked
  /// and adds reclaimed bytes to *bytes_reclaimed.
  uint64_t GarbageCollect(uint64_t oldest_active_ts, uint64_t *bytes_reclaimed);

  /// Direct head access for scans (read-only).
  const VersionNode *Head(SlotId slot) const {
    return slots_[slot].head.load(std::memory_order_acquire);
  }

  /// Rolls back a write record (called by the txn manager on abort).
  void RollbackWrite(const WriteRecord &record);

 private:
  struct TupleSlot {
    SpinLatch latch;
    std::atomic<VersionNode *> head{nullptr};
  };

  TupleSlot *GetSlot(SlotId slot) {
    return &slots_[slot];
  }

  uint32_t table_id_;
  std::string name_;
  Schema schema_;

  mutable SharedLatch append_latch_;  ///< guards deque growth vs. access
  std::deque<TupleSlot> slots_;
  std::atomic<SlotId> next_slot_{0};
};

}  // namespace mb2
