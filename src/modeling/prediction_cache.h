#pragma once

/// \file prediction_cache.h
/// Memoizing OU-prediction cache for the serving layer. Production query
/// plans translate to a small set of distinct (OU type, feature vector)
/// pairs repeated across queries and forecast intervals, so ModelBot fronts
/// every OU-model with a bounded per-type LRU map from feature vector to
/// predicted labels. Predictions are deterministic, so a hit is always
/// bit-identical to recomputing; the cache is invalidated whenever a model
/// changes (retrain or load).

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "metrics/resource_tracker.h"
#include "modeling/operating_unit.h"

namespace mb2 {

/// Hash over a feature vector's values, consistent with operator== on the
/// vector: -0.0 is canonicalized to 0.0 before hashing because the two
/// compare equal but differ in bit pattern.
struct FeatureVectorHash {
  size_t operator()(const FeatureVector &v) const;
};

struct PredictionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;  ///< currently cached, summed over all OU types
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Per-OU-type sharded LRU cache. Shards lock independently so serving can
/// fan OU types out across a thread pool.
class PredictionCache {
 public:
  explicit PredictionCache(size_t capacity_per_type = 4096)
      : capacity_(capacity_per_type) {}
  MB2_DISALLOW_COPY_AND_MOVE(PredictionCache);

  /// On a hit copies the cached labels into *out, marks the entry
  /// most-recently-used, and returns true. Counts a miss otherwise.
  /// Always misses when the capacity is 0 (cache disabled).
  bool Lookup(OuType type, const FeatureVector &features, Labels *out);

  /// Inserts (or refreshes) an entry, evicting least-recently-used entries
  /// past the per-type bound. No-op when the capacity is 0.
  void Insert(OuType type, const FeatureVector &features, const Labels &labels);

  /// Drops every entry of one OU type (that model was retrained).
  void Invalidate(OuType type);
  /// Drops every entry (model set replaced). Counters are preserved.
  void InvalidateAll();

  /// Adjusts the per-type bound; shrinking evicts immediately. Safe against
  /// concurrent Lookup/Insert: the bound is an atomic read outside the shard
  /// locks, so a serving thread may briefly apply the old bound, but never
  /// tears or races.
  void SetCapacity(size_t capacity_per_type);
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  PredictionCacheStats stats() const;
  void ResetStats();

 private:
  struct Entry {
    FeatureVector key;
    Labels labels;
  };
  using EntryList = std::list<Entry>;  // front = most recently used
  struct Shard {
    mutable std::mutex mutex;
    EntryList lru;
    std::unordered_map<FeatureVector, EntryList::iterator, FeatureVectorHash> index;
    uint64_t hits = 0, misses = 0, evictions = 0;
  };

  void TrimShard(Shard *shard, size_t cap);

  Shard shards_[kNumOuTypes];
  /// Read by every Lookup/Insert without the shard locks while SetCapacity
  /// (knob changes mid-serving) writes it — must be atomic, not plain.
  std::atomic<size_t> capacity_;
};

}  // namespace mb2
