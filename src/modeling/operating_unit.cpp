#include "modeling/operating_unit.h"

#include <array>

#include "common/macros.h"

namespace mb2 {

namespace {

std::vector<std::string> ExecFeatureNames() {
  return {"num_rows", "num_cols",     "avg_tuple_size", "cardinality",
          "payload_size", "num_loops", "exec_mode"};
}

std::array<OuDescriptor, kNumOuTypes> BuildDescriptors() {
  std::array<OuDescriptor, kNumOuTypes> d{};
  auto set = [&](OuType t, const char *name, OuClass cls,
                 std::vector<std::string> feats, OuComplexity cx,
                 int32_t n_feat, int32_t mem_feat = -1) {
    d[static_cast<size_t>(t)] =
        OuDescriptor{t, name, cls, std::move(feats), cx, n_feat, mem_feat};
  };

  set(OuType::kSeqScan, "SEQ_SCAN", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kIdxScan, "IDX_SCAN", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kHashJoinBuild, "HASHJOIN_BUILD", OuClass::kSingular,
      ExecFeatureNames(), OuComplexity::kLinear, 0);
  set(OuType::kHashJoinProbe, "HASHJOIN_PROBE", OuClass::kSingular,
      ExecFeatureNames(), OuComplexity::kLinear, 0);
  set(OuType::kAggBuild, "AGG_BUILD", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0, /*mem_feat=*/3);
  set(OuType::kAggProbe, "AGG_PROBE", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kSortBuild, "SORT_BUILD", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kNLogN, 0);
  set(OuType::kSortIterate, "SORT_ITER", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kInsert, "INSERT", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kUpdate, "UPDATE", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kDelete, "DELETE", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kArithmetic, "ARITHMETICS", OuClass::kSingular,
      {"num_rows", "op_complexity", "exec_mode"}, OuComplexity::kLinear, 0);
  set(OuType::kOutput, "OUTPUT", OuClass::kSingular, ExecFeatureNames(),
      OuComplexity::kLinear, 0);
  set(OuType::kGarbageCollection, "GC", OuClass::kBatch,
      {"versions_unlinked", "bytes_reclaimed", "gc_interval_us"},
      OuComplexity::kLinear, 0);
  set(OuType::kIndexBuild, "INDEX_BUILD", OuClass::kContending,
      {"num_rows", "num_keys", "key_size", "cardinality", "num_threads"},
      OuComplexity::kNLogN, 0);
  set(OuType::kLogSerialize, "LOG_SERIALIZE", OuClass::kBatch,
      {"num_records", "num_bytes", "num_buffers", "interval_us"},
      OuComplexity::kLinear, 0);
  set(OuType::kLogFlush, "LOG_FLUSH", OuClass::kBatch,
      {"num_bytes", "num_buffers", "flush_interval_us"}, OuComplexity::kLinear,
      1);
  set(OuType::kTxnBegin, "TXN_BEGIN", OuClass::kContending,
      {"arrival_rate", "running_txns"}, OuComplexity::kConstant, -1);
  set(OuType::kTxnCommit, "TXN_COMMIT", OuClass::kContending,
      {"arrival_rate", "running_txns"}, OuComplexity::kConstant, -1);
  // Block I/O over the disk-backed heap. PAGE_READ's cost is bimodal per
  // page (buffer-pool hit vs miss), so the estimated miss count is its own
  // feature — a linear model then fits hit_cost*num_pages +
  // miss_extra*est_misses. Training measures actual misses; serving
  // estimates them from table pages vs pool capacity (the cardinality
  // train-on-actuals/serve-on-estimates idiom).
  set(OuType::kPageRead, "PAGE_READ", OuClass::kBatch,
      {"num_pages", "est_misses", "num_rows", "pool_pages"},
      OuComplexity::kLinear, 0);
  set(OuType::kPageWrite, "PAGE_WRITE", OuClass::kBatch,
      {"num_pages", "num_bytes", "pool_pages"}, OuComplexity::kLinear, 0);
  set(OuType::kPageEvict, "PAGE_EVICT", OuClass::kBatch,
      {"num_pages", "pool_pages"}, OuComplexity::kLinear, 0);
  return d;
}

}  // namespace

const OuDescriptor &GetOuDescriptor(OuType type) {
  static const std::array<OuDescriptor, kNumOuTypes> kDescriptors =
      BuildDescriptors();
  MB2_ASSERT(type < OuType::kNumOuTypes, "bad OU type");
  return kDescriptors[static_cast<size_t>(type)];
}

const char *OuTypeName(OuType type) { return GetOuDescriptor(type).name; }

FeatureVector MakeExecFeatures(double num_rows, double num_cols,
                               double avg_tuple_size, double cardinality,
                               double payload_size, double num_loops,
                               double exec_mode) {
  return {num_rows, num_cols, avg_tuple_size, cardinality,
          payload_size, num_loops, exec_mode};
}

}  // namespace mb2
