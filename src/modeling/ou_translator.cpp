#include "modeling/ou_translator.h"

#include "index/bplus_tree.h"
#include "index/index_builder.h"
#include "storage/table.h"

namespace mb2 {

namespace {

double SchemaTupleBytes(const Schema &schema) {
  return static_cast<double>(schema.TupleByteSize());
}

}  // namespace

std::vector<TranslatedOu> OuTranslator::TranslateQuery(
    const PlanNode &plan, double exec_mode_override) const {
  // Vectorized (knob value 2) shares the compiled exec_mode feature class,
  // mirroring ExecutionContext::ModeFeature at collection time.
  const double mode =
      exec_mode_override >= 0.0
          ? exec_mode_override
          : (settings_->GetInt("execution_mode") >= 1 ? 1.0 : 0.0);
  std::vector<TranslatedOu> out;
  TranslateNode(plan, mode, &out);
  return out;
}

void OuTranslator::TranslateNode(const PlanNode &node, double mode,
                                 std::vector<TranslatedOu> *out) const {
  // Children first: execution is bottom-up (operator-at-a-time).
  for (const auto &child : node.children) TranslateNode(*child, mode, out);

  switch (node.type) {
    case PlanNodeType::kSeqScan: {
      const auto *scan = node.As<SeqScanPlan>();
      const double table_rows = estimator_->TableRows(scan->table);
      // Disk tables stage their heap pages before the scan proper
      // (ExecSeqScanDisk), so prepend the PAGE_READ OU. Training measured
      // the actual buffer-pool miss count; serving estimates it as the
      // pages that cannot fit the pool — 0 when the table fits (hot cache),
      // pages - pool when it cannot (the steady-state eviction regime).
      const Table *table = catalog_->GetTable(scan->table);
      if (table != nullptr && table->storage() == TableStorage::kDisk) {
        const double pages = static_cast<double>(table->heap()->NumPages());
        const double pool =
            static_cast<double>(table->heap()->pool()->CapacityPages());
        const double est_misses = pages > pool ? pages - pool : 0.0;
        out->push_back(
            {OuType::kPageRead, {pages, est_misses, table_rows, pool}});
      }
      // The scan OU itself emits every visible row (the predicate is a
      // separate ARITHMETIC OU), so its output-cardinality feature is the
      // table row count — matching what training-time execution records.
      out->push_back({OuType::kSeqScan,
                      MakeExecFeatures(table_rows,
                                       node.output_schema.NumColumns(),
                                       SchemaTupleBytes(node.output_schema),
                                       table_rows, 0.0, 1.0, mode)});
      if (scan->predicate != nullptr) {
        out->push_back({OuType::kArithmetic,
                        {table_rows,
                         static_cast<double>(scan->predicate->Complexity()),
                         mode}});
      }
      break;
    }
    case PlanNodeType::kIndexScan: {
      const auto *scan = node.As<IndexScanPlan>();
      const BPlusTree *index = catalog_->GetIndex(scan->index);
      const double entries =
          index != nullptr ? static_cast<double>(index->NumEntries())
                           : estimator_->TableRows(scan->table);
      out->push_back({OuType::kIdxScan,
                      MakeExecFeatures(node.estimated_rows,
                                       node.output_schema.NumColumns(),
                                       SchemaTupleBytes(node.output_schema),
                                       entries, 0.0, 1.0, mode)});
      if (scan->predicate != nullptr) {
        out->push_back({OuType::kArithmetic,
                        {node.estimated_rows,
                         static_cast<double>(scan->predicate->Complexity()),
                         mode}});
      }
      break;
    }
    case PlanNodeType::kHashJoin: {
      const PlanNode &build = *node.children[0];
      const PlanNode &probe = *node.children[1];
      const double payload = SchemaTupleBytes(build.output_schema);
      out->push_back({OuType::kHashJoinBuild,
                      MakeExecFeatures(build.estimated_rows,
                                       build.output_schema.NumColumns(), payload,
                                       node.estimated_cardinality, payload, 1.0,
                                       mode)});
      out->push_back({OuType::kHashJoinProbe,
                      MakeExecFeatures(probe.estimated_rows,
                                       probe.output_schema.NumColumns(),
                                       SchemaTupleBytes(probe.output_schema),
                                       node.estimated_rows, payload, 1.0, mode)});
      break;
    }
    case PlanNodeType::kAggregate: {
      const auto *agg = node.As<AggregatePlan>();
      const PlanNode &child = *node.children[0];
      const double payload = static_cast<double>(agg->group_by.size() * 8 +
                                                 agg->terms.size() * 32);
      out->push_back({OuType::kAggBuild,
                      MakeExecFeatures(child.estimated_rows,
                                       child.output_schema.NumColumns(),
                                       SchemaTupleBytes(child.output_schema),
                                       node.estimated_rows, payload, 1.0, mode)});
      out->push_back(
          {OuType::kAggProbe,
           MakeExecFeatures(node.estimated_rows,
                            node.output_schema.NumColumns(),
                            SchemaTupleBytes(node.output_schema),
                            node.estimated_rows, 0.0, 1.0, mode)});
      break;
    }
    case PlanNodeType::kSort: {
      const auto *sort = node.As<SortPlan>();
      const PlanNode &child = *node.children[0];
      const double bytes = SchemaTupleBytes(child.output_schema);
      out->push_back({OuType::kSortBuild,
                      MakeExecFeatures(child.estimated_rows,
                                       child.output_schema.NumColumns(), bytes,
                                       node.estimated_cardinality, bytes, 1.0,
                                       mode)});
      const double out_rows =
          sort->limit != 0
              ? std::min(child.estimated_rows, static_cast<double>(sort->limit))
              : child.estimated_rows;
      out->push_back({OuType::kSortIterate,
                      MakeExecFeatures(out_rows,
                                       child.output_schema.NumColumns(), bytes,
                                       0.0, 0.0, 1.0, mode)});
      break;
    }
    case PlanNodeType::kProjection: {
      const auto *proj = node.As<ProjectionPlan>();
      uint32_t complexity = 0;
      for (const auto &e : proj->exprs) complexity += e->Complexity();
      out->push_back({OuType::kArithmetic,
                      {node.children[0]->estimated_rows,
                       static_cast<double>(complexity), mode}});
      break;
    }
    case PlanNodeType::kLimit:
      break;  // no measurable work of its own
    case PlanNodeType::kInsert: {
      const auto *insert = node.As<InsertPlan>();
      const Table *table = catalog_->GetTable(insert->table);
      const double bytes =
          table != nullptr ? SchemaTupleBytes(table->schema()) : 64.0;
      const double cols =
          table != nullptr ? table->schema().NumColumns() : 8.0;
      out->push_back({OuType::kInsert,
                      MakeExecFeatures(node.estimated_rows, cols, bytes, 0.0,
                                       0.0, 1.0, mode)});
      break;
    }
    case PlanNodeType::kUpdate: {
      const auto *update = node.As<UpdatePlan>();
      out->push_back({OuType::kUpdate,
                      MakeExecFeatures(
                          node.estimated_rows,
                          static_cast<double>(update->sets.size()),
                          SchemaTupleBytes(node.children[0]->output_schema),
                          0.0, 0.0, 1.0, mode)});
      break;
    }
    case PlanNodeType::kDelete: {
      out->push_back({OuType::kDelete,
                      MakeExecFeatures(
                          node.estimated_rows,
                          node.children[0]->output_schema.NumColumns(),
                          SchemaTupleBytes(node.children[0]->output_schema),
                          0.0, 0.0, 1.0, mode)});
      break;
    }
    case PlanNodeType::kOutput: {
      out->push_back({OuType::kOutput,
                      MakeExecFeatures(node.estimated_rows,
                                       node.output_schema.NumColumns(),
                                       SchemaTupleBytes(node.output_schema),
                                       0.0, 0.0, 1.0, mode)});
      break;
    }
  }
}

std::vector<TranslatedOu> OuTranslator::TranslateAction(const Action &action) const {
  std::vector<TranslatedOu> out;
  if (action.type != ActionType::kCreateIndex) return out;

  Table *table = catalog_->GetTable(action.index.table_name);
  if (table == nullptr) return out;
  const double rows = estimator_->TableRows(action.index.table_name);
  double key_size = 0.0;
  double cardinality = 1.0;
  for (uint32_t c : action.index.key_columns) {
    const Column &col = table->schema().GetColumn(c);
    key_size += col.type == TypeId::kVarchar ? col.varchar_len : 8;
    cardinality = std::max(
        cardinality, estimator_->ColumnDistinct(action.index.table_name, c));
  }
  out.push_back({OuType::kIndexBuild,
                 {rows, static_cast<double>(action.index.key_columns.size()),
                  key_size, cardinality,
                  static_cast<double>(action.build_threads)}});
  return out;
}

double OuTranslator::EstimateWriteBytes(const PlanNode &node) const {
  double bytes = 0.0;
  for (const auto &child : node.children) bytes += EstimateWriteBytes(*child);
  switch (node.type) {
    case PlanNodeType::kInsert: {
      const auto *insert = node.As<InsertPlan>();
      const Table *table = catalog_->GetTable(insert->table);
      const double row_bytes =
          table != nullptr ? SchemaTupleBytes(table->schema()) : 64.0;
      bytes += node.estimated_rows * (row_bytes + 25.0);
      break;
    }
    case PlanNodeType::kUpdate: {
      const auto *update = node.As<UpdatePlan>();
      const Table *table = catalog_->GetTable(update->table);
      const double row_bytes =
          table != nullptr ? SchemaTupleBytes(table->schema()) : 64.0;
      bytes += node.estimated_rows * (row_bytes + 25.0);
      break;
    }
    case PlanNodeType::kDelete:
      bytes += node.estimated_rows * 25.0;
      break;
    default:
      break;
  }
  return bytes;
}

std::vector<TranslatedOu> OuTranslator::TranslateIntervalMaintenance(
    const WorkloadForecast &forecast) const {
  std::vector<TranslatedOu> out;
  double total_bytes = 0.0;
  double total_records = 0.0;
  for (const auto &entry : forecast.entries) {
    if (entry.plan == nullptr) continue;
    const double execs = entry.arrival_rate * forecast.interval_s;
    const double bytes = EstimateWriteBytes(*entry.plan);
    total_bytes += execs * bytes;
    if (bytes > 0.0) total_records += execs;
  }
  const double flush_interval = settings_->GetDouble("log_flush_interval_us");
  const double gc_interval = settings_->GetDouble("gc_interval_us");
  if (total_bytes > 0.0) {
    const double buffers = std::max(1.0, total_bytes / LogBuffer::kCapacity);
    out.push_back({OuType::kLogSerialize,
                   {total_records, total_bytes, buffers, flush_interval}});
    out.push_back({OuType::kLogFlush, {total_bytes, buffers, flush_interval}});
  }
  // GC reclaims roughly the interval's superseded versions.
  const double interval_us = forecast.interval_s * 1e6;
  const double gc_runs = std::max(1.0, interval_us / std::max(1.0, gc_interval));
  if (total_records > 0.0) {
    out.push_back({OuType::kGarbageCollection,
                   {total_records / gc_runs, total_bytes / gc_runs, gc_interval}});
  }
  return out;
}

std::vector<TranslatedOu> OuTranslator::TranslateTransactions(
    const WorkloadForecast &forecast) const {
  std::vector<TranslatedOu> out;
  double rate = 0.0;
  for (const auto &entry : forecast.entries) rate += entry.arrival_rate;
  if (rate <= 0.0) return out;
  const double running = rate / std::max(1u, forecast.num_threads) * 0.001;
  out.push_back({OuType::kTxnBegin, {rate, running}});
  out.push_back({OuType::kTxnCommit, {rate, running}});
  return out;
}

}  // namespace mb2
