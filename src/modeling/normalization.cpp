#include "modeling/normalization.h"

#include <cmath>

namespace mb2 {

double ComplexityFactor(OuComplexity complexity, double n) {
  const double safe_n = std::max(1.0, n);
  switch (complexity) {
    case OuComplexity::kConstant: return 1.0;
    case OuComplexity::kLinear: return safe_n;
    case OuComplexity::kNLogN: return safe_n * std::log2(std::max(2.0, safe_n));
  }
  return safe_n;
}

namespace {

void ApplyFactors(OuType type, const FeatureVector &features, Labels *labels,
                  bool inverse) {
  const OuDescriptor &desc = GetOuDescriptor(type);
  if (desc.tuple_count_feature < 0) return;
  const double n = features[static_cast<size_t>(desc.tuple_count_feature)];
  const double factor = ComplexityFactor(desc.complexity, n);

  // Memory normalizes by a (possibly different) linear driver.
  double mem_factor;
  if (desc.memory_normalizer_feature >= 0) {
    mem_factor = std::max(
        1.0, features[static_cast<size_t>(desc.memory_normalizer_feature)]);
  } else {
    mem_factor = std::max(1.0, n);
  }

  for (size_t i = 0; i < kNumLabels; i++) {
    const double f = (i == kLabelMemoryBytes) ? mem_factor : factor;
    (*labels)[i] = inverse ? (*labels)[i] * f : (*labels)[i] / f;
  }
}

}  // namespace

void NormalizeLabels(OuType type, const FeatureVector &features, Labels *labels) {
  ApplyFactors(type, features, labels, /*inverse=*/false);
}

void DenormalizeLabels(OuType type, const FeatureVector &features, Labels *labels) {
  ApplyFactors(type, features, labels, /*inverse=*/true);
}

}  // namespace mb2
