#pragma once

/// \file ou_model.h
/// One behavior model per operating unit: trained on OU-runner data via the
/// Sec 6.4 procedure (80/20 split over candidate algorithms, winner retrained
/// on everything), predicting all nine normalized output labels.

#include <map>
#include <memory>
#include <vector>

#include "metrics/metrics_collector.h"
#include "ml/model_selection.h"
#include "modeling/operating_unit.h"

namespace mb2 {

class OuModel {
 public:
  explicit OuModel(OuType type) : type_(type) {}

  /// Trains from raw (feature, label) pairs. When `normalize` is on (the
  /// default, and MB2's contribution), labels are divided by the OU's
  /// complexity factor before fitting; Predict() undoes it. With a pool,
  /// the candidate algorithms fit in parallel (bit-identical results; see
  /// SelectAndTrain).
  void Train(const Matrix &x, const Matrix &y_raw,
             const std::vector<MlAlgorithm> &algorithms, bool normalize = true,
             uint64_t seed = 42, ThreadPool *pool = nullptr);

  /// Convenience: trains a specific algorithm without selection.
  void TrainWith(MlAlgorithm algo, const Matrix &x, const Matrix &y_raw,
                 bool normalize = true, uint64_t seed = 42);

  Labels Predict(const FeatureVector &features) const;

  /// Batched Predict: one Regressor::PredictBatch over all feature vectors,
  /// then the same per-row copy/denormalize/clamp as Predict. Bit-identical
  /// to calling Predict on each vector.
  void PredictBatch(const std::vector<FeatureVector> &features,
                    std::vector<Labels> *out) const;

  OuType type() const { return type_; }
  bool trained() const { return model_ != nullptr; }
  MlAlgorithm best_algorithm() const { return best_algorithm_; }
  const std::map<MlAlgorithm, double> &test_errors() const { return test_errors_; }
  uint64_t SerializedBytes() const {
    return model_ == nullptr ? 0 : model_->SerializedBytes();
  }

  /// Persists type tag, normalization flag, and the fitted model.
  void Save(BinaryWriter *writer) const;
  /// Restores a saved OU-model; returns null on a corrupt stream.
  static std::unique_ptr<OuModel> Load(BinaryReader *reader);

  /// Test-set relative error of the selected algorithm.
  double best_test_error() const {
    auto it = test_errors_.find(best_algorithm_);
    return it == test_errors_.end() ? 0.0 : it->second;
  }

 private:
  Matrix NormalizeDataset(const Matrix &x, const Matrix &y_raw) const;

  OuType type_;
  bool normalize_ = true;
  std::unique_ptr<Regressor> model_;
  MlAlgorithm best_algorithm_ = MlAlgorithm::kLinear;
  std::map<MlAlgorithm, double> test_errors_;
};

/// Converts drained metrics records into per-OU (X, Y) training matrices.
struct OuDataset {
  Matrix x;
  Matrix y;
};
std::map<OuType, OuDataset> GroupRecordsByOu(const std::vector<OuRecord> &records);

}  // namespace mb2
