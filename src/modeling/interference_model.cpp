#include "modeling/interference_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace mb2 {

FeatureVector InterferenceModel::MakeFeatures(
    const Labels &target_predicted, const std::vector<Labels> &per_thread_totals) {
  const double norm = std::max(1.0, target_predicted[kLabelElapsedUs]);
  FeatureVector out;
  out.reserve(kNumFeatures);
  for (size_t j = 0; j < kNumLabels; j++) {
    out.push_back(target_predicted[j] / norm);
  }
  const double t = std::max<size_t>(1, per_thread_totals.size());
  for (size_t j = 0; j < kNumLabels; j++) {
    double sum = 0.0;
    for (const auto &labels : per_thread_totals) sum += labels[j];
    const double mean = sum / t;
    double var = 0.0;
    for (const auto &labels : per_thread_totals) {
      var += (labels[j] - mean) * (labels[j] - mean);
    }
    var /= t;
    out.push_back(sum / norm);
    out.push_back(var / std::max(1.0, norm * norm));
  }
  out.push_back(static_cast<double>(per_thread_totals.size()));
  return out;
}

void InterferenceModel::Train(const Matrix &x, const Matrix &y,
                              const std::vector<MlAlgorithm> &algorithms,
                              uint64_t seed) {
  // Same 80/20 procedure as the OU-models, with one deployment-minded
  // twist: when the neural network is competitive (within 10% of the best
  // test error) it wins the tie. The interference model ships as ONE model
  // for the whole DBMS — the paper found the NN best here (its capacity to
  // consume the summary statistics, Sec 8.4) at a ~66 KB footprint, whereas
  // a near-tied forest of deep trees over the concurrent-runner dataset is
  // orders of magnitude larger for no accuracy gain.
  const TrainTestSplit split = SplitData(x, y, 0.2, seed);
  double best_error = 1e300;
  MlAlgorithm best_algo = MlAlgorithm::kNeuralNetwork;
  bool nn_tried = false;
  for (MlAlgorithm algo : algorithms) {
    auto model = CreateRegressor(algo, seed);
    model->Fit(split.x_train, split.y_train);
    const double err = AvgRelativeError(*model, split.x_test, split.y_test);
    test_errors_[algo] = err;
    if (err < best_error) {
      best_error = err;
      best_algo = algo;
    }
    nn_tried |= algo == MlAlgorithm::kNeuralNetwork;
  }
  best_algorithm_ = best_algo;
  if (nn_tried &&
      test_errors_[MlAlgorithm::kNeuralNetwork] <= best_error * 1.10) {
    best_algorithm_ = MlAlgorithm::kNeuralNetwork;
  }
  model_ = CreateRegressor(best_algorithm_, seed);
  model_->Fit(x, y);
}

Labels InterferenceModel::AdjustmentRatios(
    const Labels &target_predicted,
    const std::vector<Labels> &per_thread_totals) const {
  Labels ratios;
  ratios.fill(1.0);
  if (model_ == nullptr) return ratios;
  const FeatureVector features = MakeFeatures(target_predicted, per_thread_totals);
  const std::vector<double> raw = model_->Predict(features);
  for (size_t j = 0; j < kNumLabels && j < raw.size(); j++) {
    ratios[j] = std::max(1.0, raw[j]);
  }
  return ratios;
}

std::vector<Labels> InterferenceModel::AdjustmentRatiosBatch(
    const std::vector<Labels> &targets,
    const std::vector<Labels> &per_thread_totals) const {
  std::vector<Labels> out(targets.size());
  for (auto &ratios : out) ratios.fill(1.0);
  if (model_ == nullptr || targets.empty()) return out;
  Matrix x;
  x.Reserve(targets.size(), kNumFeatures);
  for (const Labels &target : targets) {
    const FeatureVector features = MakeFeatures(target, per_thread_totals);
    x.AppendRow(features.data(), features.size());
  }
  Matrix pred;
  model_->PredictBatch(x, &pred);
  for (size_t i = 0; i < targets.size(); i++) {
    const double *raw = pred.RowPtr(i);
    for (size_t j = 0; j < kNumLabels && j < pred.cols(); j++) {
      out[i][j] = std::max(1.0, raw[j]);
    }
  }
  return out;
}

InterferenceDataset BuildInterferenceDataset(
    const std::vector<OuRecord> &records,
    const std::map<OuType, std::unique_ptr<OuModel>> &ou_models) {
  InterferenceDataset out;

  // Bucket records by time window, tracking per-thread predicted totals.
  struct Window {
    std::unordered_map<uint64_t, Labels> thread_totals;
    std::vector<std::pair<size_t, Labels>> samples;  // record idx, prediction
  };
  std::map<int64_t, Window> windows;

  for (size_t i = 0; i < records.size(); i++) {
    const OuRecord &r = records[i];
    auto it = ou_models.find(r.ou);
    if (it == ou_models.end() || !it->second->trained()) continue;
    const Labels predicted = it->second->Predict(r.features);
    const int64_t w = static_cast<int64_t>(
        static_cast<double>(r.end_time_us) / InterferenceModel::kWindowUs);
    Window &window = windows[w];
    auto [tit, inserted] = window.thread_totals.try_emplace(r.thread_id);
    if (inserted) tit->second.fill(0.0);
    for (size_t j = 0; j < kNumLabels; j++) tit->second[j] += predicted[j];
    window.samples.emplace_back(i, predicted);
  }

  for (auto &[w, window] : windows) {
    std::vector<Labels> per_thread;
    per_thread.reserve(window.thread_totals.size());
    for (auto &[tid, totals] : window.thread_totals) per_thread.push_back(totals);

    for (auto &[idx, predicted] : window.samples) {
      const OuRecord &r = records[idx];
      // Skip degenerate samples the ratio label is meaningless for.
      if (predicted[kLabelElapsedUs] < 1e-3) continue;
      FeatureVector x = InterferenceModel::MakeFeatures(predicted, per_thread);
      std::vector<double> y(kNumLabels, 1.0);
      for (size_t j = 0; j < kNumLabels; j++) {
        if (predicted[j] < 1e-9) {
          y[j] = 1.0;
        } else {
          y[j] = std::max(1.0, r.labels[j] / predicted[j]);
        }
      }
      out.x.AppendRow(x);
      out.y.AppendRow(y);
    }
  }
  return out;
}



void InterferenceModel::Save(BinaryWriter *writer) const {
  writer->Put<uint8_t>(static_cast<uint8_t>(best_algorithm_));
  writer->Put<uint8_t>(model_ != nullptr ? 1 : 0);
  if (model_ != nullptr) SaveRegressor(*model_, writer);
}

void InterferenceModel::LoadFrom(BinaryReader *reader) {
  best_algorithm_ = static_cast<MlAlgorithm>(reader->Get<uint8_t>());
  if (reader->Get<uint8_t>() != 0) model_ = LoadRegressor(reader);
}

}  // namespace mb2
