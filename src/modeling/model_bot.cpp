#include "modeling/model_bot.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "common/checksum.h"
#include "common/fault_injector.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/drift_monitor.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace mb2 {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point &start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

TrainingReport ModelBot::TrainOuModels(const std::vector<OuRecord> &records,
                                       const std::vector<MlAlgorithm> &algorithms,
                                       bool normalize, uint64_t seed,
                                       ThreadPool *pool) {
  TrainingReport report;
  const auto start = std::chrono::steady_clock::now();
  auto datasets = GroupRecordsByOu(records);

  // Fit the eligible OUs into indexed slots so the parallel path aggregates
  // in the same deterministic (OuType-sorted) order as the serial one.
  std::vector<std::pair<OuType, const OuDataset *>> eligible;
  {
    std::unique_lock<std::shared_mutex> lock(models_mutex_);
    for (auto &[type, dataset] : datasets) {
      // Every observed OU contributes to the degraded-fallback table, even
      // the ones too small to train on — a rough mean beats a zero when the
      // model is later missing or corrupt.
      UpdateFallbackLabels(type, dataset.y);
      if (dataset.x.rows() < 10) continue;  // not enough data to split
      eligible.emplace_back(type, &dataset);
    }
  }
  std::vector<std::unique_ptr<OuModel>> fitted(eligible.size());
  auto fit_one = [&](size_t i) {
    auto model = std::make_unique<OuModel>(eligible[i].first);
    model->Train(eligible[i].second->x, eligible[i].second->y, algorithms,
                 normalize, seed);
    fitted[i] = std::move(model);
  };
  if (pool != nullptr) {
    for (size_t i = 0; i < eligible.size(); i++) {
      pool->Submit([&fit_one, i] { fit_one(i); });
    }
    pool->WaitAll();
  } else {
    for (size_t i = 0; i < eligible.size(); i++) fit_one(i);
  }

  std::unique_lock<std::shared_mutex> lock(models_mutex_);
  for (size_t i = 0; i < eligible.size(); i++) {
    const OuType type = eligible[i].first;
    auto model = std::move(fitted[i]);
    report.per_ou_test_error[type] = model->best_test_error();
    report.per_ou_algorithm[type] = model->best_algorithm();
    report.model_bytes += model->SerializedBytes();
    report.samples += eligible[i].second->x.rows();
    ou_models_[type] = std::move(model);
    ou_cache_.Invalidate(type);  // stale predictions must not outlive the model
  }
  report.train_seconds = SecondsSince(start);
  return report;
}

void ModelBot::RetrainOu(OuType type, const std::vector<OuRecord> &records,
                         const std::vector<MlAlgorithm> &algorithms,
                         bool normalize, uint64_t seed) {
  auto datasets = GroupRecordsByOu(records);
  auto it = datasets.find(type);
  if (it == datasets.end()) return;
  // Train outside the lock (the slow part); serving keeps answering from the
  // old model until the swap below.
  auto model = std::make_unique<OuModel>(type);
  model->Train(it->second.x, it->second.y, algorithms, normalize, seed);
  std::unique_lock<std::shared_mutex> lock(models_mutex_);
  UpdateFallbackLabels(type, it->second.y);
  ou_models_[type] = std::move(model);
  ou_cache_.Invalidate(type);
}

TrainingReport ModelBot::TrainInterferenceModel(
    const std::vector<OuRecord> &records,
    const std::vector<MlAlgorithm> &algorithms, uint64_t seed) {
  TrainingReport report;
  const auto start = std::chrono::steady_clock::now();
  InterferenceDataset dataset = [&] {
    std::shared_lock<std::shared_mutex> lock(models_mutex_);
    return BuildInterferenceDataset(records, ou_models_);
  }();
  // Cap the training-set size: concurrent runners emit one record per OU
  // invocation and can easily produce 10x more samples than the model needs.
  constexpr size_t kMaxSamples = 20000;
  if (dataset.x.rows() > kMaxSamples) {
    std::vector<size_t> idx(dataset.x.rows());
    for (size_t i = 0; i < idx.size(); i++) idx[i] = i;
    Rng rng(seed);
    rng.Shuffle(&idx);
    idx.resize(kMaxSamples);
    dataset.x = dataset.x.SelectRows(idx);
    dataset.y = dataset.y.SelectRows(idx);
  }
  if (dataset.x.rows() >= 10) {
    interference_.Train(dataset.x, dataset.y, algorithms, seed);
  }
  report.samples = dataset.x.rows();
  report.model_bytes = interference_.SerializedBytes();
  report.train_seconds = SecondsSince(start);
  return report;
}

const OuModel *ModelBot::GetOuModelUnlocked(OuType type) const {
  auto it = ou_models_.find(type);
  return it == ou_models_.end() ? nullptr : it->second.get();
}

const OuModel *ModelBot::GetOuModel(OuType type) const {
  std::shared_lock<std::shared_mutex> lock(models_mutex_);
  return GetOuModelUnlocked(type);
}

uint64_t ModelBot::TotalOuModelBytes() const {
  std::shared_lock<std::shared_mutex> lock(models_mutex_);
  uint64_t bytes = 0;
  for (const auto &[type, model] : ou_models_) bytes += model->SerializedBytes();
  return bytes;
}

void ModelBot::UpdateFallbackLabels(OuType type, const Matrix &y_raw) {
  if (y_raw.rows() == 0) return;
  Labels fallback{};
  for (size_t j = 0; j < kNumLabels && j < y_raw.cols(); j++) {
    std::vector<double> column(y_raw.rows());
    for (size_t r = 0; r < y_raw.rows(); r++) column[r] = y_raw.At(r, j);
    fallback[j] = TrimmedMean(std::move(column));
  }
  fallback_labels_[type] = fallback;
}

Labels ModelBot::PredictOu(const TranslatedOu &ou, bool *degraded) const {
  std::shared_lock<std::shared_mutex> lock(models_mutex_);
  const OuModel *model = GetOuModelUnlocked(ou.type);
  if (model == nullptr) {
    // Degradation policy: no usable model for this OU (never trained, or its
    // file was corrupt/deleted). Serve the interference-free trimmed mean of
    // the training labels and flag the prediction; zeros only when the OU
    // was never observed at all.
    if (degraded != nullptr) *degraded = true;
    auto it = fallback_labels_.find(ou.type);
    if (it != fallback_labels_.end()) return it->second;
    Labels zero{};
    return zero;
  }
  if (SimulatedHardware::AppendContextFeature()) {
    FeatureVector with_context = ou.features;
    with_context.push_back(SimulatedHardware::EffectiveFreqGhz());
    return model->Predict(with_context);
  }
  return model->Predict(ou.features);
}

std::vector<Labels> ModelBot::PredictOus(const std::vector<TranslatedOu> &ous,
                                         uint32_t *degraded_ous,
                                         ThreadPool *pool) const {
  std::vector<Labels> results(ous.size());
  if (ous.empty()) return results;
  ObsSpan span("modelbot.predict_ous");
  static Counter &predicted =
      MetricsRegistry::Instance().GetCounter("mb2_predict_ous_total");
  predicted.Add(ous.size());
  if (settings_ != nullptr) {
    // Only touch the cache bound when the knob actually moved; SetCapacity
    // takes every shard lock, which would serialize concurrent serving.
    const size_t want = static_cast<size_t>(
        std::max(0.0, settings_->GetDouble("ou_cache_capacity")));
    if (want != ou_cache_.capacity()) ou_cache_.SetCapacity(want);
  }
  // The simulated-hardware context feature is part of the model input, so it
  // must be part of the cache key too.
  const bool with_context = SimulatedHardware::AppendContextFeature();
  const double context_freq =
      with_context ? SimulatedHardware::EffectiveFreqGhz() : 0.0;

  // Hold the model set stable (shared) for the whole batch: a concurrent
  // RetrainDrifted must not swap a model out from under PredictBatch. Pool
  // workers below run while this thread owns the shared lock, which is what
  // keeps writers out — the workers themselves never lock (no recursion).
  std::shared_lock<std::shared_mutex> models_lock(models_mutex_);

  // Serve model-less OUs from the fallback table immediately; group the rest
  // by type, keeping each group's indexes in input order.
  std::vector<std::vector<size_t>> groups(kNumOuTypes);
  uint32_t fell_back = 0;
  for (size_t i = 0; i < ous.size(); i++) {
    if (GetOuModelUnlocked(ous[i].type) == nullptr) {
      fell_back++;
      auto it = fallback_labels_.find(ous[i].type);
      if (it != fallback_labels_.end()) results[i] = it->second;
      continue;
    }
    groups[static_cast<size_t>(ous[i].type)].push_back(i);
  }

  auto serve_type = [&](size_t type_idx) {
    const std::vector<size_t> &idxs = groups[type_idx];
    if (idxs.empty()) return;
    const OuType type = static_cast<OuType>(type_idx);
    const OuModel &model = *GetOuModelUnlocked(type);

    // Cache pass: hits are answered in place; misses are deduplicated so the
    // model sees each distinct feature vector once.
    std::vector<FeatureVector> miss_features;
    std::unordered_map<FeatureVector, size_t, FeatureVectorHash> miss_slots;
    std::vector<int64_t> slot_of(idxs.size(), -1);
    for (size_t n = 0; n < idxs.size(); n++) {
      FeatureVector key = ous[idxs[n]].features;
      if (with_context) key.push_back(context_freq);
      Labels cached;
      if (ou_cache_.Lookup(type, key, &cached)) {
        results[idxs[n]] = cached;
        continue;
      }
      auto [it, inserted] = miss_slots.try_emplace(std::move(key),
                                                   miss_features.size());
      if (inserted) miss_features.push_back(it->first);
      slot_of[n] = static_cast<int64_t>(it->second);
    }
    if (miss_features.empty()) return;

    std::vector<Labels> predicted;
    model.PredictBatch(miss_features, &predicted);
    for (size_t s = 0; s < miss_features.size(); s++) {
      ou_cache_.Insert(type, miss_features[s], predicted[s]);
    }
    for (size_t n = 0; n < idxs.size(); n++) {
      if (slot_of[n] >= 0) {
        results[idxs[n]] = predicted[static_cast<size_t>(slot_of[n])];
      }
    }
  };

  if (pool != nullptr) {
    for (size_t t = 0; t < kNumOuTypes; t++) {
      if (groups[t].empty()) continue;
      pool->Submit([&serve_type, t] { serve_type(t); });
    }
    pool->WaitAll();
  } else {
    for (size_t t = 0; t < kNumOuTypes; t++) serve_type(t);
  }

  if (degraded_ous != nullptr) *degraded_ous += fell_back;
  return results;
}

DriftReport ModelBot::CheckDrift() const {
  DriftMonitor &monitor = DriftMonitor::Instance();
  DriftReport report;
  const std::vector<OuRecord> samples = monitor.DrainSamples();
  {
    // One shared lock across the scoring loop: concurrent serving threads
    // also read-lock, while a RetrainDrifted on another thread queues behind
    // everyone — a sample is always scored against a consistent model.
    std::shared_lock<std::shared_mutex> lock(models_mutex_);
    for (const OuRecord &sample : samples) {
      const OuModel *model = GetOuModelUnlocked(sample.ou);
      if (model == nullptr) continue;  // nothing deployed to drift from
      const Labels predicted = model->Predict(sample.features);
      const double observed = sample.labels[kLabelElapsedUs];
      const double error = std::fabs(predicted[kLabelElapsedUs] - observed) /
                           std::max(observed, 1.0);
      monitor.RecordError(sample.ou, error);
      report.processed++;
    }
  }
  MetricsRegistry::Instance()
      .GetCounter("mb2_drift_samples_total")
      .Add(report.processed);
  for (size_t t = 0; t < kNumOuTypes; t++) {
    const OuType type = static_cast<OuType>(t);
    const uint64_t in_window = monitor.ErrorCount(type);
    if (in_window == 0) continue;
    report.rolling_error[type] = monitor.RollingError(type);
    report.window_samples[type] = in_window;
  }
  report.drifted = monitor.DriftedOus();
  return report;
}

size_t ModelBot::RetrainDrifted(
    const DriftReport &report,
    const std::function<std::vector<OuRecord>(OuType)> &provider,
    const std::vector<MlAlgorithm> &algorithms, bool normalize, uint64_t seed) {
  size_t retrained = 0;
  for (OuType type : report.drifted) {
    const std::vector<OuRecord> records = provider(type);
    if (records.empty()) continue;  // runner produced nothing; keep old model
    RetrainOu(type, records, algorithms, normalize, seed);
    DriftMonitor::Instance().Reset(type);
    MetricsRegistry::Instance()
        .GetCounter("mb2_drift_retrains_total")
        .Add();
    retrained++;
  }
  return retrained;
}

void ModelBot::ExportObsMetrics() const {
  const PredictionCacheStats stats = ou_cache_.stats();
  MetricsRegistry &reg = MetricsRegistry::Instance();
  reg.GetGauge("mb2_ou_cache_hits").Set(static_cast<double>(stats.hits));
  reg.GetGauge("mb2_ou_cache_misses").Set(static_cast<double>(stats.misses));
  reg.GetGauge("mb2_ou_cache_evictions")
      .Set(static_cast<double>(stats.evictions));
  reg.GetGauge("mb2_ou_cache_entries").Set(static_cast<double>(stats.entries));
  reg.GetGauge("mb2_ou_cache_hit_rate").Set(stats.HitRate());
}

QueryPrediction ModelBot::PredictQuery(const PlanNode &plan,
                                       double exec_mode_override) const {
  QueryPrediction prediction;
  prediction.ous = translator_.TranslateQuery(plan, exec_mode_override);
  prediction.total.fill(0.0);
  prediction.per_ou = PredictOus(prediction.ous, &prediction.degraded_ous);
  for (const Labels &labels : prediction.per_ou) {
    for (size_t j = 0; j < kNumLabels; j++) prediction.total[j] += labels[j];
  }
  prediction.degraded = prediction.degraded_ous > 0;
  return prediction;
}

QueryPrediction ModelBot::PredictAction(const Action &action) const {
  QueryPrediction prediction;
  prediction.ous = translator_.TranslateAction(action);
  prediction.total.fill(0.0);
  prediction.per_ou = PredictOus(prediction.ous, &prediction.degraded_ous);
  for (const Labels &labels : prediction.per_ou) {
    for (size_t j = 0; j < kNumLabels; j++) prediction.total[j] += labels[j];
  }
  prediction.degraded = prediction.degraded_ous > 0;
  return prediction;
}

IntervalPrediction ModelBot::PredictInterval(
    const WorkloadForecast &forecast, const std::vector<Action> &actions) const {
  IntervalPrediction out;
  out.interval_totals.fill(0.0);
  out.action_labels.fill(0.0);

  const uint32_t threads = std::max(1u, forecast.num_threads);
  const double interval_us = forecast.interval_s * 1e6;

  // 1. Predict per-execution labels for each template.
  struct EntryPrediction {
    const ForecastEntry *entry;
    QueryPrediction isolated;
    double executions;
  };
  std::vector<EntryPrediction> entries;
  for (const auto &entry : forecast.entries) {
    if (entry.plan == nullptr) continue;
    EntryPrediction ep;
    ep.entry = &entry;
    ep.isolated = PredictQuery(*entry.plan);
    if (ep.isolated.degraded) out.degraded = true;
    ep.executions = entry.arrival_rate * forecast.interval_s;
    entries.push_back(std::move(ep));
  }

  // 2. Per-thread predicted totals, scaled to the interference model's
  //    training window so summaries are load intensities, not interval sums.
  const double window_scale =
      InterferenceModel::kWindowUs / std::max(1.0, interval_us);
  std::vector<Labels> per_thread(threads);
  for (auto &labels : per_thread) labels.fill(0.0);
  for (const auto &ep : entries) {
    for (uint32_t t = 0; t < threads; t++) {
      const double share = ep.executions / threads * window_scale;
      for (size_t j = 0; j < kNumLabels; j++) {
        per_thread[t][j] += ep.isolated.total[j] * share;
      }
    }
  }

  // Maintenance + transaction OUs are spread across all threads.
  std::vector<TranslatedOu> maintenance =
      translator_.TranslateIntervalMaintenance(forecast);
  {
    const auto txns = translator_.TranslateTransactions(forecast);
    maintenance.insert(maintenance.end(), txns.begin(), txns.end());
  }
  uint32_t maintenance_degraded = 0;
  const std::vector<Labels> maintenance_pred =
      PredictOus(maintenance, &maintenance_degraded);
  if (maintenance_degraded > 0) out.degraded = true;
  for (const Labels &labels : maintenance_pred) {
    for (uint32_t t = 0; t < threads; t++) {
      for (size_t j = 0; j < kNumLabels; j++) {
        per_thread[t][j] += labels[j] / threads * window_scale;
      }
    }
  }

  // Actions: index builds run on their own worker threads, which contribute
  // load for the fraction of the interval the build is active.
  std::vector<std::pair<const Action *, QueryPrediction>> action_preds;
  for (const auto &action : actions) {
    QueryPrediction ap = PredictAction(action);
    if (ap.ous.empty()) continue;
    if (ap.degraded) out.degraded = true;
    const double build_elapsed = ap.total[kLabelElapsedUs];
    const double active_fraction =
        std::min(1.0, build_elapsed / std::max(1.0, interval_us));
    const uint32_t build_threads = std::max(1u, action.build_threads);
    for (uint32_t t = 0; t < build_threads; t++) {
      Labels thread_load{};
      for (size_t j = 0; j < kNumLabels; j++) {
        // Per-build-thread share of the build's resources, as an intensity
        // over the training window.
        thread_load[j] = ap.total[j] / build_threads * active_fraction *
                         (InterferenceModel::kWindowUs /
                          std::max(1.0, build_elapsed));
      }
      per_thread.push_back(thread_load);
    }
    action_preds.emplace_back(&action, std::move(ap));
  }

  // 3. Adjust every OU's prediction with the interference model and
  //    aggregate per query template. All the ratio queries share the (now
  //    final) per-thread totals, so they run as ONE batched prediction in
  //    input order and are consumed from a cursor in the same order.
  std::vector<Labels> ratio_targets;
  for (const auto &ep : entries) {
    for (const Labels &pred : ep.isolated.per_ou) ratio_targets.push_back(pred);
  }
  ratio_targets.insert(ratio_targets.end(), maintenance_pred.begin(),
                       maintenance_pred.end());
  for (const auto &[action, ap] : action_preds) ratio_targets.push_back(ap.total);
  const std::vector<Labels> all_ratios =
      interference_.AdjustmentRatiosBatch(ratio_targets, per_thread);
  size_t ratio_cursor = 0;

  double weighted_latency = 0.0;
  double total_rate = 0.0;
  double total_cpu_us = 0.0;
  for (const auto &ep : entries) {
    double adjusted_elapsed = 0.0;
    for (size_t i = 0; i < ep.isolated.ous.size(); i++) {
      const Labels &pred = ep.isolated.per_ou[i];
      const Labels &ratios = all_ratios[ratio_cursor++];
      for (size_t j = 0; j < kNumLabels; j++) {
        const double adj = pred[j] * ratios[j];
        out.interval_totals[j] += adj * ep.executions;
        if (j == kLabelElapsedUs) adjusted_elapsed += adj;
        if (j == kLabelCpuTimeUs) total_cpu_us += adj * ep.executions;
      }
    }
    out.query_elapsed_us[ep.entry->label] = adjusted_elapsed;
    weighted_latency += adjusted_elapsed * ep.entry->arrival_rate;
    total_rate += ep.entry->arrival_rate;
  }
  out.avg_query_elapsed_us = total_rate > 0.0 ? weighted_latency / total_rate : 0.0;

  for (size_t i = 0; i < maintenance.size(); i++) {
    const Labels &pred = maintenance_pred[i];
    const Labels &ratios = all_ratios[ratio_cursor++];
    for (size_t j = 0; j < kNumLabels; j++) {
      out.interval_totals[j] += pred[j] * ratios[j];
    }
    total_cpu_us += pred[kLabelCpuTimeUs] * ratios[kLabelCpuTimeUs];
  }

  double action_cpu_us = 0.0;
  for (const auto &[action, ap] : action_preds) {
    const Labels &ratios = all_ratios[ratio_cursor++];
    for (size_t j = 0; j < kNumLabels; j++) {
      out.action_labels[j] += ap.total[j] * ratios[j];
    }
    action_cpu_us += ap.total[kLabelCpuTimeUs] * ratios[kLabelCpuTimeUs];
  }
  out.action_elapsed_us = out.action_labels[kLabelElapsedUs];

  // CPU utilization relative to one core over the window the work occupies.
  const double action_window_us =
      actions.empty() ? interval_us
                      : std::min(interval_us, std::max(1.0, out.action_elapsed_us));
  out.cpu_utilization = (total_cpu_us + action_cpu_us) / interval_us;
  out.action_cpu_utilization = action_cpu_us / action_window_us;
  return out;
}


namespace {
constexpr uint32_t kModelFileMagic = 0x4d42324dU;  // "MB2M"
// v2: adds the degraded-fallback label table and a trailing CRC32 footer.
constexpr uint32_t kModelFileVersion = 2;
}  // namespace

Status ModelBot::SaveModels(const std::string &dir) const {
  const std::string final_path = dir + "/mb2_models.bin";
  const std::string tmp_path = final_path + ".tmp";

  {
    std::shared_lock<std::shared_mutex> lock(models_mutex_);
    auto writer = BinaryWriter::Open(tmp_path);
    if (!writer.ok()) return writer.status();
    BinaryWriter &w = writer.value();
    w.Put<uint32_t>(kModelFileMagic);
    w.Put<uint32_t>(kModelFileVersion);
    w.Put<uint32_t>(static_cast<uint32_t>(ou_models_.size()));
    for (const auto &[type, model] : ou_models_) model->Save(&w);
    w.Put<uint32_t>(static_cast<uint32_t>(fallback_labels_.size()));
    for (const auto &[type, labels] : fallback_labels_) {
      w.Put<uint8_t>(static_cast<uint8_t>(type));
      for (size_t j = 0; j < kNumLabels; j++) w.Put<double>(labels[j]);
    }
    interference_.Save(&w);
    w.Flush();
    if (!w.ok()) {
      w.Close();
      std::remove(tmp_path.c_str());
      return Status::IoError("short write while saving models to " + tmp_path);
    }
  }

  // Seal the payload with a CRC32 footer so any later truncation or bit rot
  // is detected at load time.
  auto crc = Crc32OfFile(tmp_path);
  if (!crc.ok()) return crc.status();
  {
    FILE *f = std::fopen(tmp_path.c_str(), "ab");
    if (f == nullptr) return Status::IoError("cannot append checksum to " + tmp_path);
    const uint32_t value = crc.value();
    const size_t wrote = std::fwrite(&value, sizeof(value), 1, f);
    std::fclose(f);
    if (wrote != 1) return Status::IoError("cannot append checksum to " + tmp_path);
  }

  // Simulated save failure: the crash happens before the atomic rename, so
  // at worst a partial .tmp file survives and the deployed set is untouched.
  if (FaultInjector::Instance().Armed()) {
    const FaultCheck fc =
        FaultInjector::Instance().Hit(fault_point::kPersistenceWrite);
    if (fc.fire) {
      if (fc.action == FaultAction::kThrow) throw InjectedFault(fc.message);
      if (fc.action == FaultAction::kTornWrite) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(tmp_path, ec);
        if (!ec) {
          std::filesystem::resize_file(
              tmp_path,
              static_cast<uintmax_t>(static_cast<double>(size) * fc.torn_fraction),
              ec);
        }
      } else {
        std::remove(tmp_path.c_str());
      }
      return fc.ToStatus(fault_point::kPersistenceWrite);
    }
  }

  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " into place");
  }
  return Status::Ok();
}

Status ModelBot::LoadModels(const std::string &dir) {
  const std::string path = dir + "/mb2_models.bin";

  if (FaultInjector::Instance().Armed()) {
    const FaultCheck fc =
        FaultInjector::Instance().Hit(fault_point::kPersistenceRead);
    if (fc.fire) {
      if (fc.action == FaultAction::kThrow) throw InjectedFault(fc.message);
      return fc.ToStatus(fault_point::kPersistenceRead);
    }
  }

  // Checksum gate: recompute the payload CRC and compare with the footer
  // before parsing a single byte.
  {
    auto crc = Crc32OfFile(path, /*skip_trailing=*/sizeof(uint32_t));
    if (!crc.ok()) return crc.status();
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IoError("cannot open " + path);
    std::fseek(f, -static_cast<long>(sizeof(uint32_t)), SEEK_END);
    uint32_t stored = 0;
    const size_t got = std::fread(&stored, sizeof(stored), 1, f);
    std::fclose(f);
    if (got != 1 || stored != crc.value()) {
      return Status::InvalidArgument("model file checksum mismatch: " + path);
    }
  }

  auto reader = BinaryReader::Open(path);
  if (!reader.ok()) return reader.status();
  BinaryReader &r = reader.value();
  if (r.Get<uint32_t>() != kModelFileMagic) {
    return Status::InvalidArgument("not an MB2 model file");
  }
  if (r.Get<uint32_t>() != kModelFileVersion) {
    return Status::InvalidArgument("unsupported model file version");
  }
  const uint32_t count = r.Get<uint32_t>();
  std::map<OuType, std::unique_ptr<OuModel>> loaded;
  for (uint32_t i = 0; i < count && r.ok(); i++) {
    auto model = OuModel::Load(&r);
    if (model == nullptr) return Status::InvalidArgument("corrupt OU-model");
    const OuType type = model->type();
    loaded[type] = std::move(model);
  }
  std::map<OuType, Labels> fallback;
  const uint32_t fallback_count = r.Get<uint32_t>();
  if (!r.ok() || fallback_count > kNumOuTypes) {
    return Status::InvalidArgument("corrupt fallback table");
  }
  for (uint32_t i = 0; i < fallback_count && r.ok(); i++) {
    const uint8_t type_tag = r.Get<uint8_t>();
    if (type_tag >= kNumOuTypes) {
      return Status::InvalidArgument("corrupt fallback table");
    }
    Labels labels{};
    for (size_t j = 0; j < kNumLabels; j++) labels[j] = r.Get<double>();
    fallback[static_cast<OuType>(type_tag)] = labels;
  }
  interference_.LoadFrom(&r);
  if (!r.ok()) return Status::InvalidArgument("corrupt model file");
  std::unique_lock<std::shared_mutex> lock(models_mutex_);
  ou_models_ = std::move(loaded);
  fallback_labels_ = std::move(fallback);
  ou_cache_.InvalidateAll();  // new model set: cached predictions are stale
  return Status::Ok();
}

}  // namespace mb2
