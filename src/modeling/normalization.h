#pragma once

/// \file normalization.h
/// Output-label normalization (Sec 4.3): labels are divided by the OU's
/// asymptotic complexity in the processed tuple count n, so OU-runners only
/// need to sweep n up to the convergence point (~1M) yet the models
/// generalize to datasets orders of magnitude larger. The memory label for
/// aggregation hash tables normalizes by cardinality instead of n (they
/// grow with distinct keys, not input rows).

#include "metrics/resource_tracker.h"
#include "modeling/operating_unit.h"

namespace mb2 {

/// Complexity factor C(n) the labels are divided by.
double ComplexityFactor(OuComplexity complexity, double n);

/// In-place normalization of one record's labels given its features.
void NormalizeLabels(OuType type, const FeatureVector &features, Labels *labels);

/// Inverse transform applied to model outputs at inference.
void DenormalizeLabels(OuType type, const FeatureVector &features, Labels *labels);

}  // namespace mb2
