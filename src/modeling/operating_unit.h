#pragma once

/// \file operating_unit.h
/// The operating-unit (OU) decomposition of the engine — Table 1 of the
/// paper. An OU is a step the DBMS performs to complete a task: query
/// execution steps (build a join hash table), maintenance steps (garbage
/// collection), and self-driving actions (index build). Every OU gets its
/// own behavior model; the enum below is the contract between the engine's
/// instrumentation, the OU-runners, and the modeling layer.

#include <cstdint>
#include <string>
#include <vector>

namespace mb2 {

enum class OuType : uint8_t {
  // --- Execution (singular) ---
  kSeqScan = 0,
  kIdxScan,
  kHashJoinBuild,
  kHashJoinProbe,
  kAggBuild,
  kAggProbe,
  kSortBuild,
  kSortIterate,
  kInsert,
  kUpdate,
  kDelete,
  kArithmetic,
  // --- Network (singular) ---
  kOutput,
  // --- Util (batch) ---
  kGarbageCollection,
  // --- Contending ---
  kIndexBuild,
  // --- WAL (batch) ---
  kLogSerialize,
  kLogFlush,
  // --- Transactions (contending) ---
  kTxnBegin,
  kTxnCommit,
  // --- Block I/O (batch; disk-backed table heap, DESIGN.md §4i) ---
  kPageRead,
  kPageWrite,
  kPageEvict,

  kNumOuTypes,
};

constexpr size_t kNumOuTypes = static_cast<size_t>(OuType::kNumOuTypes);

/// Behavior pattern of an OU (Sec 4.2). Singular OUs describe one
/// invocation's work; batch OUs describe the aggregate work of a forecast
/// interval; contending OUs carry internal-contention features (threads,
/// arrival rates).
enum class OuClass : uint8_t { kSingular, kBatch, kContending };

/// Asymptotic complexity in the tuple count used for output-label
/// normalization (Sec 4.3).
enum class OuComplexity : uint8_t { kConstant, kLinear, kNLogN };

/// Static description of one OU: its name, class, input-feature names, and
/// the normalization rules for its labels.
struct OuDescriptor {
  OuType type;
  const char *name;
  OuClass ou_class;
  std::vector<std::string> feature_names;
  OuComplexity complexity;
  /// Feature index holding the tuple/record count `n` used to normalize
  /// labels; -1 disables normalization for this OU.
  int32_t tuple_count_feature;
  /// Feature index used to normalize the memory label. Joins pre-allocate by
  /// tuple count; aggregation hash tables grow with distinct keys, so the
  /// agg-build OU normalizes memory by its cardinality feature instead
  /// (Sec 4.3's special case). -1 follows tuple_count_feature.
  int32_t memory_normalizer_feature;
};

const OuDescriptor &GetOuDescriptor(OuType type);
const char *OuTypeName(OuType type);

/// Feature vector for one OU invocation. Width varies per OU (at most 10 per
/// the paper's low-dimensionality principle).
using FeatureVector = std::vector<double>;

/// Canonical feature layout for the 12 "singular" execution OUs:
///   [0] num_rows         input tuples
///   [1] num_cols         input tuple columns
///   [2] avg_tuple_size   bytes
///   [3] cardinality      estimated key cardinality (sort/join/agg)
///   [4] payload_size     hash-table entry / sort-row payload bytes
///   [5] num_loops        repeated invocations (index-nested-loop joins)
///   [6] exec_mode        0 interpret / 1 compiled
namespace exec_feature {
constexpr size_t kNumRows = 0;
constexpr size_t kNumCols = 1;
constexpr size_t kAvgTupleSize = 2;
constexpr size_t kCardinality = 3;
constexpr size_t kPayloadSize = 4;
constexpr size_t kNumLoops = 5;
constexpr size_t kExecMode = 6;
constexpr size_t kCount = 7;
}  // namespace exec_feature

/// Builds the 7-wide singular execution feature vector.
FeatureVector MakeExecFeatures(double num_rows, double num_cols,
                               double avg_tuple_size, double cardinality,
                               double payload_size, double num_loops,
                               double exec_mode);

}  // namespace mb2
