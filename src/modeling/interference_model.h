#pragma once

/// \file interference_model.h
/// The shared concurrency-interference model (Sec 5). One model serves all
/// OUs: its inputs are the target OU's predicted labels plus summary
/// statistics (per-thread sums and the across-thread variance) of the
/// OU-model predictions for everything forecast to run in the same window,
/// all normalized by the target's predicted elapsed time. Its outputs are
/// the element-wise ratios actual/predicted (always >= 1: OUs run fastest
/// in isolation).

#include <map>
#include <memory>
#include <vector>

#include "metrics/metrics_collector.h"
#include "ml/model_selection.h"
#include "modeling/ou_model.h"

namespace mb2 {

class InterferenceModel {
 public:
  /// target labels (9) + across-thread {sum, variance} (18) + the number of
  /// concurrent streams (the forecast's concurrency information, Sec 5.1).
  static constexpr size_t kNumFeatures = 3 * kNumLabels + 1;

  /// Training window the summaries are computed over. Summaries at inference
  /// must be scaled to the same window (the model is otherwise agnostic to
  /// interval length — Sec 5.2).
  static constexpr double kWindowUs = 1e6;

  /// Builds the normalized feature vector.
  static FeatureVector MakeFeatures(const Labels &target_predicted,
                                    const std::vector<Labels> &per_thread_totals);

  void Train(const Matrix &x, const Matrix &y,
             const std::vector<MlAlgorithm> &algorithms, uint64_t seed = 42);

  /// Predicted adjustment ratios (clamped to >= 1).
  Labels AdjustmentRatios(const Labels &target_predicted,
                          const std::vector<Labels> &per_thread_totals) const;

  /// Batched variant: ratios for many targets sharing the same per-thread
  /// totals, served by one Regressor::PredictBatch. Element-identical to
  /// calling AdjustmentRatios once per target.
  std::vector<Labels> AdjustmentRatiosBatch(
      const std::vector<Labels> &targets,
      const std::vector<Labels> &per_thread_totals) const;

  /// Persistence (used by ModelBot::SaveModels / LoadModels).
  void Save(BinaryWriter *writer) const;
  void LoadFrom(BinaryReader *reader);

  bool trained() const { return model_ != nullptr; }
  MlAlgorithm best_algorithm() const { return best_algorithm_; }
  const std::map<MlAlgorithm, double> &test_errors() const { return test_errors_; }
  uint64_t SerializedBytes() const {
    return model_ == nullptr ? 0 : model_->SerializedBytes();
  }

 private:
  std::unique_ptr<Regressor> model_;
  MlAlgorithm best_algorithm_ = MlAlgorithm::kNeuralNetwork;
  std::map<MlAlgorithm, double> test_errors_;
};

struct InterferenceDataset {
  Matrix x;
  Matrix y;
};

/// Converts concurrent-runner records into interference training data:
/// records are bucketed into kWindowUs windows by completion time and
/// thread; each record becomes one sample whose target prediction comes from
/// the (already trained) OU-models and whose label is the observed ratio.
InterferenceDataset BuildInterferenceDataset(
    const std::vector<OuRecord> &records,
    const std::map<OuType, std::unique_ptr<OuModel>> &ou_models);

}  // namespace mb2
