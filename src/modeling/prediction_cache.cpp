#include "modeling/prediction_cache.h"

#include <cstring>

namespace mb2 {

namespace {
inline uint64_t MixBits(uint64_t h, uint64_t v) {
  v *= 0x9e3779b97f4a7c15ULL;
  v ^= v >> 32;
  h ^= v;
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}
}  // namespace

size_t FeatureVectorHash::operator()(const FeatureVector &v) const {
  uint64_t h = 0x84222325cbf29ce4ULL ^ static_cast<uint64_t>(v.size());
  for (double d : v) {
    const double canonical = d == 0.0 ? 0.0 : d;  // -0.0 compares equal to 0.0
    uint64_t bits;
    std::memcpy(&bits, &canonical, sizeof(bits));
    h = MixBits(h, bits);
  }
  return static_cast<size_t>(h);
}

bool PredictionCache::Lookup(OuType type, const FeatureVector &features,
                             Labels *out) {
  if (capacity() == 0) return false;
  Shard &shard = shards_[static_cast<size_t>(type)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(features);
  if (it == shard.index.end()) {
    shard.misses++;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.hits++;
  *out = it->second->labels;
  return true;
}

void PredictionCache::Insert(OuType type, const FeatureVector &features,
                             const Labels &labels) {
  const size_t cap = capacity();
  if (cap == 0) return;
  Shard &shard = shards_[static_cast<size_t>(type)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(features);
  if (it != shard.index.end()) {
    it->second->labels = labels;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{features, labels});
  shard.index.emplace(features, shard.lru.begin());
  TrimShard(&shard, cap);
}

void PredictionCache::TrimShard(Shard *shard, size_t cap) {
  while (shard->index.size() > cap) {
    shard->index.erase(shard->lru.back().key);
    shard->lru.pop_back();
    shard->evictions++;
  }
}

void PredictionCache::Invalidate(OuType type) {
  Shard &shard = shards_[static_cast<size_t>(type)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.index.clear();
  shard.lru.clear();
}

void PredictionCache::InvalidateAll() {
  for (size_t t = 0; t < kNumOuTypes; t++) {
    Invalidate(static_cast<OuType>(t));
  }
}

void PredictionCache::SetCapacity(size_t capacity_per_type) {
  if (capacity_per_type == capacity()) return;
  capacity_.store(capacity_per_type, std::memory_order_relaxed);
  for (Shard &shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    TrimShard(&shard, capacity_per_type);
  }
}

PredictionCacheStats PredictionCache::stats() const {
  PredictionCacheStats out;
  for (const Shard &shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.index.size();
  }
  return out;
}

void PredictionCache::ResetStats() {
  for (Shard &shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.hits = shard.misses = shard.evictions = 0;
  }
}

}  // namespace mb2
