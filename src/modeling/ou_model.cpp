#include "modeling/ou_model.h"

#include "modeling/normalization.h"

namespace mb2 {

Matrix OuModel::NormalizeDataset(const Matrix &x, const Matrix &y_raw) const {
  Matrix y = y_raw;
  if (!normalize_) return y;
  for (size_t r = 0; r < y.rows(); r++) {
    Labels labels{};
    for (size_t j = 0; j < kNumLabels; j++) labels[j] = y.At(r, j);
    const FeatureVector features = x.Row(r);
    NormalizeLabels(type_, features, &labels);
    for (size_t j = 0; j < kNumLabels; j++) y.At(r, j) = labels[j];
  }
  return y;
}

void OuModel::Train(const Matrix &x, const Matrix &y_raw,
                    const std::vector<MlAlgorithm> &algorithms, bool normalize,
                    uint64_t seed, ThreadPool *pool) {
  normalize_ = normalize;
  const Matrix y = NormalizeDataset(x, y_raw);
  SelectionResult selection = SelectAndTrain(x, y, algorithms, seed, pool);
  best_algorithm_ = selection.best_algorithm;
  test_errors_ = selection.test_errors;
  model_ = std::move(selection.final_model);
}

void OuModel::TrainWith(MlAlgorithm algo, const Matrix &x, const Matrix &y_raw,
                        bool normalize, uint64_t seed) {
  normalize_ = normalize;
  const Matrix y = NormalizeDataset(x, y_raw);
  const TrainTestSplit split = SplitData(x, y, 0.2, seed);
  auto model = CreateRegressor(algo, seed);
  model->Fit(split.x_train, split.y_train);
  test_errors_[algo] = AvgRelativeError(*model, split.x_test, split.y_test);
  best_algorithm_ = algo;
  model_ = CreateRegressor(algo, seed);
  model_->Fit(x, y);
}

Labels OuModel::Predict(const FeatureVector &features) const {
  MB2_ASSERT(model_ != nullptr, "predict before train");
  const std::vector<double> raw = model_->Predict(features);
  Labels labels{};
  for (size_t j = 0; j < kNumLabels && j < raw.size(); j++) {
    labels[j] = raw[j];
  }
  if (normalize_) DenormalizeLabels(type_, features, &labels);
  // Physical labels are non-negative.
  for (auto &v : labels) v = std::max(0.0, v);
  return labels;
}

void OuModel::PredictBatch(const std::vector<FeatureVector> &features,
                           std::vector<Labels> *out) const {
  MB2_ASSERT(model_ != nullptr, "predict before train");
  out->assign(features.size(), Labels{});
  if (features.empty()) return;
  Matrix x;
  x.Reserve(features.size(), features[0].size());
  for (const FeatureVector &f : features) x.AppendRow(f.data(), f.size());
  Matrix pred;
  model_->PredictBatch(x, &pred);
  for (size_t r = 0; r < features.size(); r++) {
    Labels &labels = (*out)[r];
    const double *raw = pred.RowPtr(r);
    for (size_t j = 0; j < kNumLabels && j < pred.cols(); j++) labels[j] = raw[j];
    if (normalize_) DenormalizeLabels(type_, features[r], &labels);
    for (auto &v : labels) v = std::max(0.0, v);
  }
}

std::map<OuType, OuDataset> GroupRecordsByOu(const std::vector<OuRecord> &records) {
  std::map<OuType, OuDataset> out;
  // Count per OU first so each dataset reserves its exact final size and the
  // append loop never reallocates.
  std::map<OuType, size_t> counts;
  for (const OuRecord &record : records) counts[record.ou]++;
  for (const OuRecord &record : records) {
    OuDataset &ds = out[record.ou];
    if (ds.x.rows() == 0) {
      const size_t n = counts[record.ou];
      ds.x.Reserve(n, record.features.size());
      ds.y.Reserve(n, record.labels.size());
    }
    ds.x.AppendRow(record.features.data(), record.features.size());
    ds.y.AppendRow(record.labels.data(), record.labels.size());
  }
  return out;
}



void OuModel::Save(BinaryWriter *writer) const {
  writer->Put<uint8_t>(static_cast<uint8_t>(type_));
  writer->Put<uint8_t>(normalize_ ? 1 : 0);
  writer->Put<uint8_t>(static_cast<uint8_t>(best_algorithm_));
  writer->Put<uint8_t>(model_ != nullptr ? 1 : 0);
  if (model_ != nullptr) SaveRegressor(*model_, writer);
}

std::unique_ptr<OuModel> OuModel::Load(BinaryReader *reader) {
  const uint8_t type_tag = reader->Get<uint8_t>();
  if (!reader->ok() || type_tag >= kNumOuTypes) return nullptr;
  auto model = std::make_unique<OuModel>(static_cast<OuType>(type_tag));
  model->normalize_ = reader->Get<uint8_t>() != 0;
  model->best_algorithm_ = static_cast<MlAlgorithm>(reader->Get<uint8_t>());
  if (reader->Get<uint8_t>() != 0) {
    model->model_ = LoadRegressor(reader);
    if (model->model_ == nullptr) return nullptr;
  }
  return model;
}

}  // namespace mb2
