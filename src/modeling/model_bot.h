#pragma once

/// \file model_bot.h
/// ModelBot2 (MB2): the end-to-end behavior-modeling framework. Owns the
/// OU-models and the interference model, trains them from runner-generated
/// data, and answers the planning system's questions: how long will an
/// action take, what resources will it consume, and how will the forecasted
/// workload perform while (and after) it runs.

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "modeling/interference_model.h"
#include "modeling/ou_model.h"
#include "modeling/ou_translator.h"
#include "modeling/prediction_cache.h"
#include "selfdriving/action.h"
#include "workload/forecast.h"

namespace mb2 {

/// Per-query behavior prediction.
struct QueryPrediction {
  std::vector<TranslatedOu> ous;
  std::vector<Labels> per_ou;  ///< parallel to `ous`
  Labels total{};              ///< element-wise sum
  /// True when at least one OU had no usable model and was served from the
  /// degraded fallback (trimmed-mean training labels, or zeros if the OU was
  /// never observed). Planners should treat degraded predictions as
  /// low-confidence, never as silent ground truth.
  bool degraded = false;
  uint32_t degraded_ous = 0;  ///< how many OUs fell back
  double ElapsedUs() const { return total[kLabelElapsedUs]; }
};

/// Whole-interval prediction under concurrency (+ optional actions).
struct IntervalPrediction {
  /// Interference-adjusted average latency per query template.
  std::map<std::string, double> query_elapsed_us;
  /// Average over templates weighted by arrival rate.
  double avg_query_elapsed_us = 0.0;
  /// Predicted elapsed time of each action (index builds), adjusted.
  double action_elapsed_us = 0.0;
  Labels action_labels{};
  /// Fraction of total CPU the interval's work consumes (0..num_threads).
  double cpu_utilization = 0.0;
  /// Fraction of total CPU consumed by the actions alone.
  double action_cpu_utilization = 0.0;
  /// Element-wise totals of all adjusted OU labels in the interval.
  Labels interval_totals{};
  /// Any constituent prediction was served degraded (missing OU model).
  bool degraded = false;
};

struct TrainingReport {
  double train_seconds = 0.0;
  uint64_t samples = 0;
  uint64_t model_bytes = 0;
  std::map<OuType, double> per_ou_test_error;
  std::map<OuType, MlAlgorithm> per_ou_algorithm;
};

/// Result of one drift check: the rolling prediction error of every OU that
/// has production samples, and the OUs whose error crossed the threshold.
struct DriftReport {
  std::map<OuType, double> rolling_error;
  std::map<OuType, uint64_t> window_samples;
  std::vector<OuType> drifted;
  size_t processed = 0;  ///< samples scored by this check
};

class ModelBot {
 public:
  ModelBot(Catalog *catalog, CardinalityEstimator *estimator,
           SettingsManager *settings)
      : translator_(catalog, estimator, settings), settings_(settings) {}
  MB2_DISALLOW_COPY_AND_MOVE(ModelBot);

  // --- Training -----------------------------------------------------------

  /// Trains one OU-model per OU present in `records` (Sec 6.4 procedure).
  /// With a pool, each OU fits on its own worker (the per-OU selection then
  /// runs serially inside the task — nesting on one pool would deadlock its
  /// WaitAll); every OU trains from the same fixed seed, so the resulting
  /// models are bit-identical to a serial run.
  TrainingReport TrainOuModels(const std::vector<OuRecord> &records,
                               const std::vector<MlAlgorithm> &algorithms,
                               bool normalize = true, uint64_t seed = 42,
                               ThreadPool *pool = nullptr);

  /// Retrains a single OU (software-update adaptation, Sec 7).
  void RetrainOu(OuType type, const std::vector<OuRecord> &records,
                 const std::vector<MlAlgorithm> &algorithms,
                 bool normalize = true, uint64_t seed = 42);

  /// Trains the interference model from concurrent-runner records.
  TrainingReport TrainInterferenceModel(const std::vector<OuRecord> &records,
                                        const std::vector<MlAlgorithm> &algorithms,
                                        uint64_t seed = 42);

  // --- Inference ----------------------------------------------------------

  /// Isolated-execution prediction for one query plan (estimates must be
  /// filled by the CardinalityEstimator; the plan must be finalized).
  QueryPrediction PredictQuery(const PlanNode &plan,
                               double exec_mode_override = -1.0) const;

  /// Prediction of an action's isolated cost (e.g. index-build time).
  QueryPrediction PredictAction(const Action &action) const;

  /// Full interval prediction: queries + maintenance + transactions +
  /// actions, adjusted for interference among the interval's OUs.
  IntervalPrediction PredictInterval(const WorkloadForecast &forecast,
                                     const std::vector<Action> &actions = {}) const;

  /// Batched serving core used by every Predict* entry point: groups the
  /// translated OUs by type, serves repeats from the memoizing OU-prediction
  /// cache (bounded per type by the `ou_cache_capacity` knob), deduplicates
  /// the remaining feature vectors, and issues ONE Regressor::PredictBatch
  /// per OU model. Bit-identical to predicting each OU individually.
  /// Returns labels parallel to `ous`; `degraded_ous` (optional) is
  /// incremented once per fallback-served OU. With a pool, OU types fan out
  /// across workers.
  std::vector<Labels> PredictOus(const std::vector<TranslatedOu> &ous,
                                 uint32_t *degraded_ous = nullptr,
                                 ThreadPool *pool = nullptr) const;

  // --- Introspection ------------------------------------------------------

  /// Persists every trained OU-model, the degraded-fallback table, and the
  /// interference model to `<dir>/mb2_models.bin` (offline train ->
  /// production deploy, Sec 3). Crash-atomic: the payload is written to a
  /// temp file, checksummed (CRC32 footer), and renamed into place, so a
  /// crash mid-save never clobbers the previously deployed model set.
  Status SaveModels(const std::string &dir) const;
  /// Restores a previously saved model set, replacing any trained models.
  /// Rejects corrupt or truncated files (checksum + structural checks)
  /// instead of loading garbage.
  Status LoadModels(const std::string &dir);

  const OuModel *GetOuModel(OuType type) const;
  const InterferenceModel &interference_model() const { return interference_; }
  OuTranslator &translator() { return translator_; }
  const OuTranslator &translator() const { return translator_; }
  uint64_t TotalOuModelBytes() const;

  /// Degradation policy: per-OU interference-free 20% trimmed mean of the
  /// training labels, recorded at train time and persisted with the models.
  /// Served (flagged `degraded`) when an OU-model is missing or failed to
  /// load, instead of crashing or answering zeros.
  const std::map<OuType, Labels> &fallback_labels() const {
    return fallback_labels_;
  }

  /// Hit/miss/eviction counters of the serving-layer OU-prediction cache.
  PredictionCacheStats ou_cache_stats() const { return ou_cache_.stats(); }
  void ResetOuCacheStats() const { ou_cache_.ResetStats(); }

  // --- Drift monitoring (Sec 7 closed loop) -------------------------------

  /// Drains the DriftMonitor's production-sampled OU observations, scores
  /// each against the deployed OU-model (relative error on the elapsed
  /// label), feeds the rolling per-OU windows + drift gauges, and reports
  /// which OUs crossed the drift threshold.
  DriftReport CheckDrift() const;

  /// Closes the loop: for every drifted OU, fetches fresh training records
  /// from `provider` (e.g. a targeted OU-runner re-run) and retrains just
  /// that OU — the Sec 7 adaptation path, now triggered by live drift
  /// instead of an operator. Resets each retrained OU's drift window.
  /// Returns the number of OUs retrained.
  size_t RetrainDrifted(
      const DriftReport &report,
      const std::function<std::vector<OuRecord>(OuType)> &provider,
      const std::vector<MlAlgorithm> &algorithms, bool normalize = true,
      uint64_t seed = 42);

  /// Publishes serving-layer gauges (OU-cache hits/misses/evictions/entries
  /// and hit rate) to the global MetricsRegistry for the next dump.
  void ExportObsMetrics() const;

 private:
  Labels PredictOu(const TranslatedOu &ou, bool *degraded) const;
  void UpdateFallbackLabels(OuType type, const Matrix &y_raw);
  /// Map lookup with models_mutex_ already held (shared or unique). The
  /// public GetOuModel takes the lock itself; internal serving paths hold
  /// one shared lock across a whole batch instead of re-locking per OU.
  const OuModel *GetOuModelUnlocked(OuType type) const;

  OuTranslator translator_;
  SettingsManager *settings_;
  /// Guards ou_models_ and fallback_labels_ against concurrent retraining:
  /// serving (PredictOus, CheckDrift) holds it shared for the duration of a
  /// batch — a model must not be replaced mid-prediction — while RetrainOu /
  /// RetrainDrifted / LoadModels install replacements under the exclusive
  /// side. Training itself (the slow part) runs outside the lock; only the
  /// pointer swap is exclusive. Never taken recursively: public entry points
  /// lock once and call *Unlocked internals.
  mutable std::shared_mutex models_mutex_;
  std::map<OuType, std::unique_ptr<OuModel>> ou_models_;
  std::map<OuType, Labels> fallback_labels_;
  InterferenceModel interference_;
  /// Memoizes (OU type, feature vector) -> labels across Predict* calls.
  /// Mutable: serving is logically const but updates recency and counters.
  /// Invalidated whenever a model changes (train, retrain, load).
  mutable PredictionCache ou_cache_;
};

}  // namespace mb2
