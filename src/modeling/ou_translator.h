#pragma once

/// \file ou_translator.h
/// Extracts OUs and their input features from query plans and self-driving
/// actions (Sec 6.1). The same translator serves training-time feature
/// generation and inference: at inference the feature values come from the
/// optimizer's cardinality estimates instead of observed counts.

#include <vector>

#include "catalog/settings.h"
#include "modeling/operating_unit.h"
#include "plan/cardinality_estimator.h"
#include "plan/plan_node.h"
#include "selfdriving/action.h"
#include "workload/forecast.h"

namespace mb2 {

/// One OU occurrence with its model input features.
struct TranslatedOu {
  OuType type;
  FeatureVector features;
};

class OuTranslator {
 public:
  OuTranslator(Catalog *catalog, CardinalityEstimator *estimator,
               SettingsManager *settings)
      : catalog_(catalog), estimator_(estimator), settings_(settings) {}

  /// OUs for one execution of a (finalized, estimated) query plan.
  /// `exec_mode_override` < 0 uses the current knob value.
  std::vector<TranslatedOu> TranslateQuery(const PlanNode &plan,
                                           double exec_mode_override = -1.0) const;

  /// OUs for a self-driving action. Index builds become an INDEX_BUILD OU;
  /// knob changes produce no OUs themselves (their effect shows up through
  /// the knob features of subsequent queries).
  std::vector<TranslatedOu> TranslateAction(const Action &action) const;

  /// Batch OUs (WAL serialize/flush, GC) for a whole forecast interval, from
  /// the interval's estimated write volume (Sec 4.2's batch-OU features are
  /// interval totals, independent of individual query plans).
  std::vector<TranslatedOu> TranslateIntervalMaintenance(
      const WorkloadForecast &forecast) const;

  /// Transaction begin/commit OUs for the interval's expected rate.
  std::vector<TranslatedOu> TranslateTransactions(
      const WorkloadForecast &forecast) const;

 private:
  void TranslateNode(const PlanNode &node, double mode,
                     std::vector<TranslatedOu> *out) const;
  /// Estimated bytes a plan writes (redo volume) per execution.
  double EstimateWriteBytes(const PlanNode &node) const;

  Catalog *catalog_;
  CardinalityEstimator *estimator_;
  SettingsManager *settings_;
};

}  // namespace mb2
