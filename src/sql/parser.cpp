#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <optional>
#include <vector>

#include "ctrl/workload_stream.h"
#include "index/index_builder.h"
#include "plan/cost_optimizer.h"
#include "selfdriving/action.h"
#include "sql/lexer.h"
#include "sql/plan_cache.h"

namespace mb2::sql {

namespace {

std::string ToLower(std::string s) {
  for (auto &c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Recursive-descent parser with an embedded binder: column names resolve
/// against the FROM tables as parsing proceeds.
class Parser {
 public:
  Parser(Database *db, std::vector<Token> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  Result<BoundStatement> ParseStatement() {
    Result<BoundStatement> result = Dispatch();
    if (!result.ok()) return result;
    // Every statement kind must consume the whole token stream: trailing
    // garbage after a complete statement is an error, not a silent no-op.
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing tokens after statement");
    }
    size_t num_literals = 0;
    for (const Token &t : tokens_) num_literals += t.literal_ordinal >= 0;
    result.value().num_literals = num_literals;
    return result;
  }

 private:
  Result<BoundStatement> Dispatch() {
    if (AcceptKeyword("SELECT")) return ParseSelect();
    if (AcceptKeyword("INSERT")) return ParseInsert();
    if (AcceptKeyword("UPDATE")) return ParseUpdate();
    if (AcceptKeyword("DELETE")) return ParseDelete();
    if (AcceptKeyword("CREATE")) return ParseCreate();
    if (AcceptKeyword("DROP")) return ParseDrop();
    return Error("expected a statement keyword");
  }

  // --- token helpers ------------------------------------------------------

  const Token &Peek() const { return tokens_[pos_]; }
  const Token &Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string &kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      pos_++;
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const std::string &sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      pos_++;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string &kw) {
    if (!AcceptKeyword(kw)) return ErrorStatus("expected " + kw);
    return Status::Ok();
  }

  Status ExpectSymbol(const std::string &sym) {
    if (!AcceptSymbol(sym)) return ErrorStatus("expected '" + sym + "'");
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorStatus("expected identifier");
    }
    return Next().text;
  }

  Status ErrorStatus(const std::string &message) const {
    return Status::InvalidArgument(message + " near offset " +
                                   std::to_string(Peek().position) +
                                   (Peek().text.empty() ? "" : " ('" +
                                    Peek().text + "')"));
  }

  Result<BoundStatement> Error(const std::string &message) const {
    return ErrorStatus(message);
  }

  // --- binding context ----------------------------------------------------

  struct FromTable {
    std::string name;
    Table *table = nullptr;
    uint32_t column_offset = 0;  // in the joined row
  };

  /// Resolves [table.]column to an index in the joined row.
  Result<uint32_t> ResolveColumn(const std::string &first) {
    std::string table_name, column_name = first;
    if (AcceptSymbol(".")) {
      table_name = first;
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      column_name = col.value();
    }
    for (const FromTable &ft : from_) {
      if (!table_name.empty() && ft.name != table_name) continue;
      const int32_t idx = ft.table->schema().ColumnIndex(column_name);
      if (idx >= 0) return ft.column_offset + static_cast<uint32_t>(idx);
    }
    return ErrorStatus("unknown column '" + column_name + "'");
  }

  /// Column index relative to a single table (UPDATE SET targets).
  Result<uint32_t> ResolveBaseColumn(Table *table, const std::string &name) {
    const int32_t idx = table->schema().ColumnIndex(name);
    if (idx < 0) return ErrorStatus("unknown column '" + name + "'");
    return static_cast<uint32_t>(idx);
  }

  // --- expressions ----------------------------------------------------------

  Result<ExprPtr> ParseExpression() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (AcceptKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      lhs = Or(std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (AcceptKeyword("AND")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      lhs = And(std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      auto child = ParseNot();
      if (!child.ok()) return child;
      return Not(std::move(child.value()));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    static const std::pair<const char *, CmpOp> kOps[] = {
        {"<=", CmpOp::kLe}, {">=", CmpOp::kGe}, {"<>", CmpOp::kNe},
        {"!=", CmpOp::kNe}, {"=", CmpOp::kEq},  {"<", CmpOp::kLt},
        {">", CmpOp::kGt}};
    for (const auto &[sym, op] : kOps) {
      if (AcceptSymbol(sym)) {
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return Cmp(op, std::move(lhs.value()), std::move(rhs.value()));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    for (;;) {
      if (AcceptSymbol("+")) {
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        lhs = Arith(ArithOp::kAdd, std::move(lhs.value()), std::move(rhs.value()));
      } else if (AcceptSymbol("-")) {
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        lhs = Arith(ArithOp::kSub, std::move(lhs.value()), std::move(rhs.value()));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    for (;;) {
      if (AcceptSymbol("*")) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        lhs = Arith(ArithOp::kMul, std::move(lhs.value()), std::move(rhs.value()));
      } else if (AcceptSymbol("/")) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        lhs = Arith(ArithOp::kDiv, std::move(lhs.value()), std::move(rhs.value()));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    if (AcceptSymbol("(")) {
      auto inner = ParseExpression();
      if (!inner.ok()) return inner;
      Status s = ExpectSymbol(")");
      if (!s.ok()) return s;
      return inner;
    }
    if (AcceptSymbol("-")) {
      auto child = ParsePrimary();
      if (!child.ok()) return child;
      return Arith(ArithOp::kSub, ConstInt(0), std::move(child.value()));
    }
    const Token &t = Peek();
    if (t.type == TokenType::kInteger) {
      pos_++;
      ExprPtr e = ConstInt(t.int_value);
      e->param_idx = t.literal_ordinal;
      return e;
    }
    if (t.type == TokenType::kFloat) {
      pos_++;
      ExprPtr e = ConstDouble(t.float_value);
      e->param_idx = t.literal_ordinal;
      return e;
    }
    if (t.type == TokenType::kString) {
      pos_++;
      ExprPtr e = Const(Value::Varchar(t.text));
      e->param_idx = t.literal_ordinal;
      return e;
    }
    if (t.type == TokenType::kIdentifier) {
      pos_++;
      auto col = ResolveColumn(t.text);
      if (!col.ok()) return col.status();
      return ColRef(col.value());
    }
    return ErrorStatus("expected an expression");
  }

  // --- predicate utilities ---------------------------------------------------

  /// Splits a predicate into AND-ed conjuncts (consumes the expression).
  static void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr> *out) {
    if (expr->type == ExprType::kLogic && expr->logic_op == LogicOp::kAnd) {
      SplitConjuncts(std::move(expr->children[0]), out);
      SplitConjuncts(std::move(expr->children[1]), out);
      return;
    }
    out->push_back(std::move(expr));
  }

  /// Column-reference range of an expression, as [min_idx, max_idx].
  static void ColumnRange(const Expression &expr, uint32_t *lo, uint32_t *hi) {
    if (expr.type == ExprType::kColumnRef) {
      *lo = std::min(*lo, expr.col_idx);
      *hi = std::max(*hi, expr.col_idx);
    }
    for (const auto &child : expr.children) ColumnRange(*child, lo, hi);
  }

  /// Rebases every column reference by subtracting `offset`.
  static void RebaseColumns(Expression *expr, uint32_t offset) {
    if (expr->type == ExprType::kColumnRef) expr->col_idx -= offset;
    for (auto &child : expr->children) RebaseColumns(child.get(), offset);
  }

  // --- SELECT --------------------------------------------------------------------

  struct SelectItem {
    enum class Kind { kStar, kColumn, kAggregate, kExpr };
    Kind kind = Kind::kColumn;
    ExprPtr expr;       // kColumn (ColRef) / kExpr / aggregate argument
    AggFunc agg_func = AggFunc::kCount;
  };

  Result<BoundStatement> ParseSelect() {
    // FROM clause is parsed first logically; scan ahead to bind columns.
    // Practical approach: remember the select-list token range, parse FROM,
    // then re-parse the select list with the binding context in place.
    const size_t select_start = pos_;
    int depth = 0;
    while (!(depth == 0 && Peek().type == TokenType::kKeyword &&
             Peek().text == "FROM")) {
      if (Peek().type == TokenType::kEnd) return Error("expected FROM");
      if (Peek().type == TokenType::kSymbol && Peek().text == "(") depth++;
      if (Peek().type == TokenType::kSymbol && Peek().text == ")") depth--;
      pos_++;
    }
    const size_t select_end = pos_;
    pos_++;  // FROM

    // FROM table [JOIN table ON a = b]...
    auto first = ExpectIdentifier();
    if (!first.ok()) return first.status();
    Status s = AddFromTable(first.value());
    if (!s.ok()) return s;

    std::vector<CostOptimizer::JoinEdge> edges;
    while (AcceptKeyword("JOIN") ||
           (AcceptKeyword("INNER") && AcceptKeyword("JOIN"))) {
      auto table = ExpectIdentifier();
      if (!table.ok()) return table.status();
      s = AddFromTable(table.value());
      if (!s.ok()) return s;
      s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      auto lhs = ExpectIdentifier();
      if (!lhs.ok()) return lhs.status();
      auto lcol = ResolveColumn(lhs.value());
      if (!lcol.ok()) return lcol.status();
      s = ExpectSymbol("=");
      if (!s.ok()) return s;
      auto rhs = ExpectIdentifier();
      if (!rhs.ok()) return rhs.status();
      auto rcol = ResolveColumn(rhs.value());
      if (!rcol.ok()) return rcol.status();
      const int o1 = TableOf(lcol.value());
      const int o2 = TableOf(rcol.value());
      if (o1 < 0 || o2 < 0 || o1 == o2) {
        return Error("ON clause must join two different tables");
      }
      const size_t lo_t = static_cast<size_t>(std::min(o1, o2));
      const size_t hi_t = static_cast<size_t>(std::max(o1, o2));
      const uint32_t lo_g = o1 < o2 ? lcol.value() : rcol.value();
      const uint32_t hi_g = o1 < o2 ? rcol.value() : lcol.value();
      edges.push_back({lo_t, lo_g - from_[lo_t].column_offset, hi_t,
                       hi_g - from_[hi_t].column_offset});
    }

    // WHERE, split into per-table conjuncts (pushdown).
    std::vector<std::vector<ExprPtr>> per_table(from_.size());
    if (AcceptKeyword("WHERE")) {
      auto predicate = ParseExpression();
      if (!predicate.ok()) return predicate.status();
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(std::move(predicate.value()), &conjuncts);
      for (auto &conjunct : conjuncts) {
        uint32_t lo = UINT32_MAX, hi = 0;
        ColumnRange(*conjunct, &lo, &hi);
        if (lo == UINT32_MAX) {
          per_table[0].push_back(std::move(conjunct));  // constant predicate
          continue;
        }
        const int owner = TableOf(lo);
        if (owner < 0 || owner != TableOf(hi)) {
          return Error("WHERE conjuncts must reference a single table "
                       "(join conditions go in ON)");
        }
        RebaseColumns(conjunct.get(), from_[owner].column_offset);
        per_table[owner].push_back(std::move(conjunct));
      }
    }

    // Access paths and join order are the optimizer's call (heuristic or
    // model-costed per the optimizer_mode knob); either way the returned
    // tree's column layout matches the written table order.
    std::vector<CostOptimizer::TableRef> refs;
    refs.reserve(from_.size());
    for (size_t i = 0; i < from_.size(); i++) {
      refs.push_back({from_[i].table, std::move(per_table[i])});
    }
    auto tree = db_->optimizer().PlanJoinTree(std::move(refs), edges);
    if (!tree.ok()) return tree.status();
    PlanPtr root = std::move(tree.value());

    // Re-parse the select list with bindings available.
    const size_t resume = pos_;
    pos_ = select_start;
    std::vector<SelectItem> items;
    bool has_aggregate = false;
    for (;;) {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.kind = SelectItem::Kind::kStar;
      } else if (Peek().type == TokenType::kKeyword &&
                 (Peek().text == "COUNT" || Peek().text == "SUM" ||
                  Peek().text == "AVG" || Peek().text == "MIN" ||
                  Peek().text == "MAX")) {
        const std::string fn = Next().text;
        item.kind = SelectItem::Kind::kAggregate;
        item.agg_func = fn == "COUNT" ? AggFunc::kCount
                        : fn == "SUM" ? AggFunc::kSum
                        : fn == "AVG" ? AggFunc::kAvg
                        : fn == "MIN" ? AggFunc::kMin
                                      : AggFunc::kMax;
        Status st = ExpectSymbol("(");
        if (!st.ok()) return st;
        if (AcceptSymbol("*")) {
          item.expr = nullptr;  // COUNT(*)
        } else {
          auto arg = ParseExpression();
          if (!arg.ok()) return arg.status();
          item.expr = std::move(arg.value());
        }
        st = ExpectSymbol(")");
        if (!st.ok()) return st;
        has_aggregate = true;
      } else {
        auto expr = ParseExpression();
        if (!expr.ok()) return expr.status();
        item.kind = expr.value()->type == ExprType::kColumnRef
                        ? SelectItem::Kind::kColumn
                        : SelectItem::Kind::kExpr;
        item.expr = std::move(expr.value());
      }
      items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    if (pos_ != select_end) return Error("malformed select list");
    pos_ = resume;

    // GROUP BY
    std::vector<uint32_t> group_by;
    if (AcceptKeyword("GROUP")) {
      Status st = ExpectKeyword("BY");
      if (!st.ok()) return st;
      for (;;) {
        auto name = ExpectIdentifier();
        if (!name.ok()) return name.status();
        auto col = ResolveColumn(name.value());
        if (!col.ok()) return col.status();
        group_by.push_back(col.value());
        if (!AcceptSymbol(",")) break;
      }
    }

    // Assemble aggregation / projection over the join output.
    if (has_aggregate) {
      auto agg = std::make_unique<AggregatePlan>();
      agg->group_by = group_by;
      for (auto &item : items) {
        if (item.kind == SelectItem::Kind::kAggregate) {
          agg->terms.push_back(
              {item.agg_func, item.expr ? std::move(item.expr) : nullptr});
        } else if (item.kind == SelectItem::Kind::kColumn) {
          // Must be one of the group keys; its output position is the key's
          // position in group_by.
          bool found = false;
          for (uint32_t g : agg->group_by) {
            if (g == item.expr->col_idx) found = true;
          }
          if (!found) {
            return Error("non-aggregated column must appear in GROUP BY");
          }
        } else if (item.kind != SelectItem::Kind::kStar) {
          return Error("expressions over aggregates are not supported");
        }
      }
      agg->children.push_back(std::move(root));
      root = std::move(agg);
    } else if (!(items.size() == 1 && items[0].kind == SelectItem::Kind::kStar)) {
      auto projection = std::make_unique<ProjectionPlan>();
      for (auto &item : items) {
        if (item.kind == SelectItem::Kind::kStar) {
          return Error("* cannot be mixed with other select items");
        }
        projection->exprs.push_back(std::move(item.expr));
      }
      projection->children.push_back(std::move(root));
      root = std::move(projection);
    }

    // ORDER BY <output position|column> [ASC|DESC]
    uint64_t limit = 0;
    int32_t limit_param = -1;
    bool has_limit = false;
    std::unique_ptr<SortPlan> sort;
    std::vector<std::pair<int32_t, Value>> structural_literals;
    if (AcceptKeyword("ORDER")) {
      Status st = ExpectKeyword("BY");
      if (!st.ok()) return st;
      sort = std::make_unique<SortPlan>();
      for (;;) {
        uint32_t out_col;
        if (Peek().type == TokenType::kInteger) {
          // An output-position ordinal is part of the plan's *structure*
          // (it becomes a sort key), not a parameter: record it so the plan
          // cache never reuses this plan for a different ordinal.
          const Token &ordinal = Next();
          out_col = static_cast<uint32_t>(ordinal.int_value) - 1;  // 1-based
          structural_literals.emplace_back(ordinal.literal_ordinal,
                                           Value::Integer(ordinal.int_value));
        } else {
          // Only meaningful for non-aggregate selects over raw rows.
          auto name = ExpectIdentifier();
          if (!name.ok()) return name.status();
          auto col = ResolveColumn(name.value());
          if (!col.ok()) return col.status();
          out_col = col.value();
        }
        sort->sort_keys.push_back(out_col);
        sort->descending.push_back(AcceptKeyword("DESC") ||
                                   (AcceptKeyword("ASC") && false));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) return Error("expected LIMIT count");
      const Token &count = Next();
      limit = static_cast<uint64_t>(count.int_value);
      limit_param = count.literal_ordinal;
      has_limit = true;
    }
    if (sort != nullptr) {
      sort->limit = limit;
      sort->limit_param = has_limit ? limit_param : -1;
      sort->children.push_back(std::move(root));
      root = std::move(sort);
    } else if (has_limit) {
      auto lim = std::make_unique<LimitPlan>();
      lim->limit = limit;
      lim->limit_param = limit_param;
      lim->children.push_back(std::move(root));
      root = std::move(lim);
    }

    BoundStatement bound;
    bound.kind = BoundStatement::Kind::kQuery;
    bound.plan = FinalizePlan(std::move(root), db_->catalog());
    db_->estimator().Estimate(bound.plan.get());
    bound.cacheable = true;
    bound.structural_literals = std::move(structural_literals);
    return bound;
  }

  Status AddFromTable(const std::string &name) {
    Table *table = db_->catalog().GetTable(name);
    if (table == nullptr) return ErrorStatus("unknown table '" + name + "'");
    uint32_t offset = 0;
    if (!from_.empty()) {
      offset = from_.back().column_offset +
               from_.back().table->schema().NumColumns();
    }
    from_.push_back({name, table, offset});
    return Status::Ok();
  }

  /// Index of the FROM table owning joined-row column `col`; -1 if none.
  int TableOf(uint32_t col) const {
    for (size_t i = from_.size(); i-- > 0;) {
      if (col >= from_[i].column_offset) return static_cast<int>(i);
    }
    return -1;
  }

  // --- INSERT / UPDATE / DELETE ----------------------------------------------

  Result<BoundStatement> ParseInsert() {
    Status s = ExpectKeyword("INTO");
    if (!s.ok()) return s;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    Table *table = db_->catalog().GetTable(name.value());
    if (table == nullptr) return Error("unknown table '" + name.value() + "'");
    s = ExpectKeyword("VALUES");
    if (!s.ok()) return s;

    auto insert = std::make_unique<InsertPlan>();
    insert->table = name.value();
    do {
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      Tuple row;
      for (;;) {
        auto expr = ParseExpression();
        if (!expr.ok()) return expr.status();
        if (expr.value()->type != ExprType::kConstant &&
            expr.value()->Complexity() == 0) {
          return Error("VALUES entries must be literals");
        }
        row.push_back(expr.value()->Evaluate({}));
        if (!AcceptSymbol(",")) break;
      }
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      if (row.size() != table->schema().NumColumns()) {
        return Error("VALUES arity does not match the table");
      }
      // Coerce numeric literals to the column type.
      for (uint32_t c = 0; c < row.size(); c++) {
        const TypeId want = table->schema().GetColumn(c).type;
        if (want == TypeId::kDouble && row[c].type() == TypeId::kInteger) {
          row[c] = Value::Double(static_cast<double>(row[c].AsInt()));
        }
        if (row[c].type() != want) {
          return Error("type mismatch in VALUES for column " +
                       table->schema().GetColumn(c).name);
        }
      }
      insert->rows.push_back(std::move(row));
    } while (AcceptSymbol(","));

    BoundStatement bound;
    bound.kind = BoundStatement::Kind::kDml;
    bound.plan = FinalizePlan(std::move(insert), db_->catalog());
    db_->estimator().Estimate(bound.plan.get());
    return bound;
  }

  Result<BoundStatement> ParseUpdate() {
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    Table *table = db_->catalog().GetTable(name.value());
    if (table == nullptr) return Error("unknown table '" + name.value() + "'");
    Status s = AddFromTable(name.value());
    if (!s.ok()) return s;
    s = ExpectKeyword("SET");
    if (!s.ok()) return s;

    auto update = std::make_unique<UpdatePlan>();
    update->table = name.value();
    do {
      auto col_name = ExpectIdentifier();
      if (!col_name.ok()) return col_name.status();
      auto col = ResolveBaseColumn(table, col_name.value());
      if (!col.ok()) return col.status();
      s = ExpectSymbol("=");
      if (!s.ok()) return s;
      auto expr = ParseExpression();
      if (!expr.ok()) return expr.status();
      update->sets.emplace_back(col.value(), std::move(expr.value()));
    } while (AcceptSymbol(","));

    std::vector<ExprPtr> conjuncts;
    if (AcceptKeyword("WHERE")) {
      auto predicate = ParseExpression();
      if (!predicate.ok()) return predicate.status();
      SplitConjuncts(std::move(predicate.value()), &conjuncts);
    }
    update->children.push_back(db_->optimizer().ChooseScan(
        table, std::move(conjuncts), /*with_slots=*/true));

    BoundStatement bound;
    bound.kind = BoundStatement::Kind::kDml;
    bound.plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(bound.plan.get());
    bound.cacheable = true;
    return bound;
  }

  Result<BoundStatement> ParseDelete() {
    Status s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    Table *table = db_->catalog().GetTable(name.value());
    if (table == nullptr) return Error("unknown table '" + name.value() + "'");
    s = AddFromTable(name.value());
    if (!s.ok()) return s;

    std::vector<ExprPtr> conjuncts;
    if (AcceptKeyword("WHERE")) {
      auto predicate = ParseExpression();
      if (!predicate.ok()) return predicate.status();
      SplitConjuncts(std::move(predicate.value()), &conjuncts);
    }
    auto del = std::make_unique<DeletePlan>();
    del->table = name.value();
    del->children.push_back(db_->optimizer().ChooseScan(
        table, std::move(conjuncts), /*with_slots=*/true));

    BoundStatement bound;
    bound.kind = BoundStatement::Kind::kDml;
    bound.plan = FinalizePlan(std::move(del), db_->catalog());
    db_->estimator().Estimate(bound.plan.get());
    bound.cacheable = true;
    return bound;
  }

  // --- DDL -------------------------------------------------------------------

  Result<BoundStatement> ParseCreate() {
    const bool unique = AcceptKeyword("UNIQUE");
    if (AcceptKeyword("TABLE")) {
      if (unique) return Error("UNIQUE applies to indexes");
      auto name = ExpectIdentifier();
      if (!name.ok()) return name.status();
      Status s = ExpectSymbol("(");
      if (!s.ok()) return s;
      std::vector<Column> columns;
      for (;;) {
        auto col_name = ExpectIdentifier();
        if (!col_name.ok()) return col_name.status();
        Column column;
        column.name = col_name.value();
        if (AcceptKeyword("INTEGER") || AcceptKeyword("BIGINT")) {
          column.type = TypeId::kInteger;
        } else if (AcceptKeyword("DOUBLE")) {
          column.type = TypeId::kDouble;
        } else if (AcceptKeyword("VARCHAR")) {
          column.type = TypeId::kVarchar;
          if (AcceptSymbol("(")) {
            if (Peek().type != TokenType::kInteger) {
              return Error("expected VARCHAR length");
            }
            column.varchar_len = static_cast<uint32_t>(Next().int_value);
            s = ExpectSymbol(")");
            if (!s.ok()) return s;
          }
        } else {
          return Error("expected a column type");
        }
        columns.push_back(std::move(column));
        if (!AcceptSymbol(",")) break;
      }
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      BoundStatement bound;
      bound.kind = BoundStatement::Kind::kCreateTable;
      bound.table_name = name.value();
      bound.schema = Schema(std::move(columns));
      // WITH ( storage = memory|disk ) — per-table storage selection
      // (DESIGN.md §4i). `storage`/`memory`/`disk` are plain identifiers,
      // compared case-insensitively like keywords.
      if (AcceptKeyword("WITH")) {
        s = ExpectSymbol("(");
        if (!s.ok()) return s;
        auto option = ExpectIdentifier();
        if (!option.ok()) return option.status();
        if (ToLower(option.value()) != "storage") {
          return Error("unknown table option '" + option.value() + "'");
        }
        s = ExpectSymbol("=");
        if (!s.ok()) return s;
        auto storage = ExpectIdentifier();
        if (!storage.ok()) return storage.status();
        const std::string value = ToLower(storage.value());
        if (value == "disk") {
          bound.storage = TableStorage::kDisk;
        } else if (value == "memory") {
          bound.storage = TableStorage::kMemory;
        } else {
          return Error("storage must be 'memory' or 'disk'");
        }
        s = ExpectSymbol(")");
        if (!s.ok()) return s;
      }
      return bound;
    }
    if (AcceptKeyword("INDEX")) {
      auto name = ExpectIdentifier();
      if (!name.ok()) return name.status();
      Status s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      auto table_name = ExpectIdentifier();
      if (!table_name.ok()) return table_name.status();
      Table *table = db_->catalog().GetTable(table_name.value());
      if (table == nullptr) {
        return Error("unknown table '" + table_name.value() + "'");
      }
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      std::vector<uint32_t> key_columns;
      for (;;) {
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        auto idx = ResolveBaseColumn(table, col.value());
        if (!idx.ok()) return idx.status();
        key_columns.push_back(idx.value());
        if (!AcceptSymbol(",")) break;
      }
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      BoundStatement bound;
      bound.kind = BoundStatement::Kind::kCreateIndex;
      bound.index_schema =
          IndexSchema{name.value(), table_name.value(), key_columns, unique};
      bound.build_threads = 1;
      if (AcceptKeyword("WITH")) {
        if (Peek().type != TokenType::kInteger) return Error("expected thread count");
        bound.build_threads = static_cast<uint32_t>(Next().int_value);
        s = ExpectKeyword("THREADS");
        if (!s.ok()) return s;
      }
      return bound;
    }
    return Error("expected TABLE or INDEX after CREATE");
  }

  Result<BoundStatement> ParseDrop() {
    Status s = ExpectKeyword("INDEX");
    if (!s.ok()) return s;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    BoundStatement bound;
    bound.kind = BoundStatement::Kind::kDropIndex;
    bound.index_name = name.value();
    return bound;
  }

  Database *db_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<FromTable> from_;
};

}  // namespace

Result<BoundStatement> Parse(Database *db, const std::string &statement) {
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) return tokens.status();
  Parser parser(db, std::move(tokens.value()));
  return parser.ParseStatement();
}

Result<QueryResult> ExecuteSql(Database *db, const std::string &statement) {
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) return tokens.status();

  PlanCache &cache = db->plan_cache();
  const bool use_cache = cache.Enabled();
  // Controller ingestion: successful query/DML executions are reported to
  // the attached workload stream under their normalized template key (the
  // plan-cache normalization, so literal variants collapse onto one
  // template). Cache hits and misses both report.
  ctrl::WorkloadStream *stream = db->workload_stream();
  std::string key;
  std::vector<Value> literals;
  if (use_cache || stream != nullptr) {
    key = NormalizeTokens(tokens.value());
  }
  const auto timed_execute = [&](const PlanNode &plan) {
    const auto start = std::chrono::steady_clock::now();
    QueryResult result = db->Execute(plan);
    if (stream != nullptr && result.status.ok()) {
      const double elapsed_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count();
      stream->Observe(key, statement, elapsed_us);
    }
    return result;
  };
  if (use_cache) {
    literals = LiteralValues(tokens.value());
    if (auto entry = cache.Lookup(key, literals)) {
      // The read-only gate must cover the cache-hit fast path too — a DML
      // template cached while this node was primary stays in the cache
      // after demotion.
      if (entry->kind == CachedPlan::Kind::kDml && db->read_only()) {
        return Status::Unavailable("read-only replica: writes not admitted");
      }
      // Literal-free templates are directly executable; otherwise clone the
      // template and splice the fresh literals into the parameter slots.
      if (entry->num_literals == 0) return timed_execute(*entry->plan);
      PlanPtr plan = InstantiatePlan(*entry, literals);
      return timed_execute(*plan);
    }
  }

  // Capture the catalog version BEFORE binding: if concurrent DDL lands
  // between parse and Insert, the entry is born stale and the next Lookup
  // discards it instead of serving a plan bound against the old catalog.
  const uint64_t version = db->catalog().version();
  Parser parser(db, std::move(tokens.value()));
  auto bound = parser.ParseStatement();
  if (!bound.ok()) return bound.status();
  BoundStatement &stmt = bound.value();
  // Everything except a pure query mutates state (DML writes rows, DDL
  // writes the catalog); none of it is admitted on a read-only replica.
  if (stmt.kind != BoundStatement::Kind::kQuery && db->read_only()) {
    return Status::Unavailable("read-only replica: writes not admitted");
  }
  switch (stmt.kind) {
    case BoundStatement::Kind::kQuery:
    case BoundStatement::Kind::kDml: {
      QueryResult result = timed_execute(*stmt.plan);
      if (use_cache && stmt.cacheable && result.status.ok()) {
        auto entry = std::make_shared<CachedPlan>();
        entry->kind = stmt.kind == BoundStatement::Kind::kQuery
                          ? CachedPlan::Kind::kQuery
                          : CachedPlan::Kind::kDml;
        entry->plan = std::move(stmt.plan);
        entry->structural_literals = std::move(stmt.structural_literals);
        entry->num_literals = stmt.num_literals;
        entry->catalog_version = version;
        cache.Insert(key, std::move(entry));
      }
      return result;
    }
    case BoundStatement::Kind::kCreateTable: {
      if (db->catalog().CreateTable(stmt.table_name, stmt.schema,
                                    stmt.storage) == nullptr) {
        // CreateTable also returns null when a disk table's heap file
        // cannot be opened; the name collision is by far the common case.
        return Status::AlreadyExists("table " + stmt.table_name +
                                     " (exists, or heap unavailable)");
      }
      return QueryResult{};
    }
    case BoundStatement::Kind::kCreateIndex: {
      // Shared self-driving action path (register unpublished, parallel
      // build, publish-or-drop) — identical whether the statement or the
      // autonomous controller asked for the index.
      Status s = Action::CreateIndex(stmt.index_schema, stmt.build_threads)
                     .Apply(db, "manual");
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case BoundStatement::Kind::kDropIndex: {
      Status s = Action::DropIndex(stmt.index_name).Apply(db, "manual");
      if (!s.ok()) return s;
      return QueryResult{};
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace mb2::sql
