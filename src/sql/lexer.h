#pragma once

/// \file lexer.h
/// Tokenizer for the SQL subset. Keywords are case-insensitive; identifiers
/// keep their case; strings are single-quoted.

#include <string>
#include <vector>

#include "common/status.h"

namespace mb2::sql {

enum class TokenType : uint8_t {
  kIdentifier,
  kKeyword,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // ( ) , ; * = < > <= >= <> + - / .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // uppercased for keywords, verbatim otherwise
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset (error messages)
  /// Zero-based index among the literal tokens (integer/float/string) of the
  /// statement, -1 for everything else. This is the parameter slot the plan
  /// cache substitutes when replaying a cached plan with fresh literals.
  int32_t literal_ordinal = -1;
};

/// Splits `input` into tokens; returns InvalidArgument on malformed input
/// (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(const std::string &input);

/// True when `word` (already uppercased) is a reserved keyword.
bool IsKeyword(const std::string &word);

}  // namespace mb2::sql
