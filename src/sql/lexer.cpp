#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace mb2::sql {

bool IsKeyword(const std::string &word) {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",     "ORDER",  "LIMIT",
      "INSERT", "INTO",   "VALUES", "UPDATE", "SET",    "DELETE", "CREATE",
      "TABLE",  "INDEX",  "DROP",   "ON",     "JOIN",   "INNER",  "AND",
      "OR",     "NOT",    "AS",     "ASC",    "DESC",   "COUNT",  "SUM",
      "AVG",    "MIN",    "MAX",    "INTEGER", "BIGINT", "DOUBLE", "VARCHAR",
      "UNIQUE", "WITH",   "THREADS"};
  return kKeywords.count(word) != 0;
}

Result<std::vector<Token>> Tokenize(const std::string &input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  int32_t next_literal = 0;

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }

    Token token;
    token.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        j++;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = word;
      for (auto &ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (IsKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') is_float = true;
        j++;
      }
      const std::string num = input.substr(i, j - i);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::stod(num);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::stoll(num);
      }
      token.text = num;
      token.literal_ordinal = next_literal++;
      i = j;
    } else if (c == '\'') {
      // A doubled quote inside the literal is an escaped quote (SQL-92):
      // 'O''Brien' is the single value O'Brien.
      std::string text;
      size_t j = i + 1;
      bool terminated = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          terminated = true;
          j++;
          break;
        }
        text.push_back(input[j]);
        j++;
      }
      if (!terminated) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
      token.literal_ordinal = next_literal++;
      i = j;
    } else {
      // Multi-char comparison operators first.
      static const char *kTwoChar[] = {"<=", ">=", "<>", "!="};
      bool matched = false;
      for (const char *op : kTwoChar) {
        if (input.compare(i, 2, op) == 0) {
          token.type = TokenType::kSymbol;
          token.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kSingles = "(),;*=<>+-/.";
        if (kSingles.find(c) == std::string::npos) {
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at offset " + std::to_string(i));
        }
        token.type = TokenType::kSymbol;
        token.text = std::string(1, c);
        i++;
      }
    }
    tokens.push_back(std::move(token));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace mb2::sql
