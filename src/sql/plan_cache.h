#pragma once

/// \file plan_cache.h
/// Parameterized prepared-statement cache for the SQL frontend. Statements
/// are normalized by replacing every literal with a typed placeholder
/// (`?i`/`?f`/`?s`), so `SELECT * FROM t WHERE id = 3` and `... id = 7`
/// share one cached plan template. A hit skips lexing-free parse/bind/plan
/// entirely: the template is cloned and the fresh literal values are
/// substituted by ordinal (expression constants, index-scan key prefixes,
/// LIMIT counts).
///
/// Invalidation is catalog-version based: every DDL, index publication, and
/// stats refresh bumps Catalog::version(); entries record the version they
/// were planned under and a mismatch discards them on lookup. Literals the
/// binder consumed *structurally* (an ORDER BY output-position ordinal)
/// cannot be parameterized — entries record those (ordinal, value) pairs and
/// only match statements whose literals agree, so `ORDER BY 1` and
/// `ORDER BY 2` never share a plan.
///
/// Capacity comes from the hot-tunable `sql_plan_cache_capacity` knob
/// (re-read on every insert; 0 disables the cache). Eviction is LRU over
/// normalized keys.

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/settings.h"
#include "plan/plan_node.h"
#include "sql/lexer.h"

namespace mb2::sql {

/// Normalized statement text: tokens joined by single spaces, literals
/// replaced by typed placeholders. This is the cache key.
std::string NormalizeTokens(const std::vector<Token> &tokens);

/// The statement's literal values in ordinal order.
std::vector<Value> LiteralValues(const std::vector<Token> &tokens);

/// One cached plan template.
struct CachedPlan {
  enum class Kind { kQuery, kDml };
  Kind kind = Kind::kQuery;
  PlanPtr plan;  ///< finalized template (schemas + estimates filled)
  /// Literal ordinals the binder consumed structurally, with the value each
  /// had at plan time; a hit requires the fresh literals to agree.
  std::vector<std::pair<int32_t, Value>> structural_literals;
  size_t num_literals = 0;
  uint64_t catalog_version = 0;
};

/// Executable plan from a template + this statement's literal values:
/// deep-clones the template and substitutes parameters by ordinal.
PlanPtr InstantiatePlan(const CachedPlan &entry,
                        const std::vector<Value> &literals);

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  ///< entries dropped on version mismatch
  uint64_t insertions = 0;
  uint64_t evictions = 0;      ///< LRU + capacity-shrink drops
};

class PlanCache {
 public:
  PlanCache(Catalog *catalog, SettingsManager *settings)
      : catalog_(catalog), settings_(settings) {}
  MB2_DISALLOW_COPY_AND_MOVE(PlanCache);

  /// False when the capacity knob is 0 — callers then bypass normalization.
  /// Observing a disabled cache also drains any entries left from before the
  /// knob was lowered, so disabling takes effect on the next statement.
  bool Enabled();

  /// A matching, current-version template for `key`, or null. Checks the
  /// catalog version and the structural-literal constraints; stale entries
  /// are dropped (counted as invalidations) and reported as misses.
  std::shared_ptr<const CachedPlan> Lookup(const std::string &key,
                                           const std::vector<Value> &literals);

  /// Registers a freshly planned template. Re-reads the capacity knob and
  /// evicts LRU keys past it (a mid-traffic knob drop shrinks the cache on
  /// the spot). Several structurally distinct variants may share one key.
  void Insert(const std::string &key, std::shared_ptr<const CachedPlan> entry);

  void Clear();
  size_t Size() const;  ///< cached keys
  PlanCacheStats stats() const;

 private:
  struct Slot {
    std::list<std::string>::iterator lru;  ///< position in recency list
    std::vector<std::shared_ptr<const CachedPlan>> variants;
  };

  void EvictToCapacityLocked(size_t capacity);

  Catalog *catalog_;
  SettingsManager *settings_;
  mutable std::mutex mutex_;
  std::list<std::string> recency_;  ///< front = most recently used
  std::map<std::string, Slot> entries_;
  PlanCacheStats stats_;
};

}  // namespace mb2::sql
