#pragma once

/// \file parser.h
/// Parser + binder for the SQL subset: statements are parsed and bound
/// against the catalog directly into executable physical plans (there is no
/// separate logical algebra — the optimizer surface of this engine is the
/// cardinality estimator plus an index-selection rule for point predicates).
///
/// Supported grammar (one statement per string, optional trailing ';'):
///   SELECT <select_list> FROM <table> [JOIN <table> ON a = b]...
///     [WHERE <predicate>] [GROUP BY <cols>] [ORDER BY <col> [ASC|DESC]]
///     [LIMIT <n>]
///   select_list := * | expr [, expr]... with aggregates COUNT(*) / COUNT /
///     SUM / AVG / MIN / MAX (mixing aggregates and plain columns implies
///     GROUP BY the plain columns, SQL-92 style must still be spelled out)
///   INSERT INTO <table> VALUES (v, ...) [, (v, ...)]...
///   UPDATE <table> SET col = expr [, col = expr]... [WHERE <predicate>]
///   DELETE FROM <table> [WHERE <predicate>]
///   CREATE TABLE <name> (col TYPE [, col TYPE]...)
///     [WITH ( storage = memory|disk )]
///   CREATE [UNIQUE] INDEX <name> ON <table> (col [, col]...)
///     [WITH <n> THREADS]
///   DROP INDEX <name>
///
/// Column references may be qualified (table.column) in joins; unqualified
/// names resolve left-to-right.

#include <memory>
#include <string>

#include "database.h"
#include "plan/plan_node.h"

namespace mb2::sql {

/// A bound statement ready for execution.
struct BoundStatement {
  enum class Kind { kQuery, kDml, kCreateTable, kCreateIndex, kDropIndex };
  Kind kind = Kind::kQuery;

  /// kQuery / kDml: finalized plan with estimates.
  PlanPtr plan;

  // kCreateTable
  std::string table_name;
  Schema schema;
  TableStorage storage = TableStorage::kMemory;

  // kCreateIndex / kDropIndex
  IndexSchema index_schema;
  uint32_t build_threads = 1;
  std::string index_name;

  // Plan-cache metadata (filled by the parser; queries/UPDATE/DELETE only).
  // INSERT folds its literals into tuples at bind time and DDL has no plan,
  // so neither is cacheable.
  bool cacheable = false;
  size_t num_literals = 0;  ///< literal tokens in the statement
  /// Literals consumed structurally (ORDER BY output-position ordinals):
  /// the cached plan only applies when fresh literals match these values.
  std::vector<std::pair<int32_t, Value>> structural_literals;
};

/// Parses and binds one statement against the database's catalog.
Result<BoundStatement> Parse(Database *db, const std::string &statement);

/// Convenience: parse, bind, and execute (DDL included). For queries and
/// DML the plan runs in its own transaction.
Result<QueryResult> ExecuteSql(Database *db, const std::string &statement);

}  // namespace mb2::sql
