#include "sql/plan_cache.h"

#include <algorithm>

#include "obs/metrics_registry.h"

namespace mb2::sql {

namespace {

/// Bound on structurally distinct plans sharing one normalized key (e.g.
/// `ORDER BY 1` vs `ORDER BY 2`); realistic statements need a handful.
constexpr size_t kMaxVariantsPerKey = 8;

Counter &HitCounter() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_plan_cache_hits_total");
  return c;
}
Counter &MissCounter() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_plan_cache_misses_total");
  return c;
}
Counter &InvalidationCounter() {
  static Counter &c = MetricsRegistry::Instance().GetCounter(
      "mb2_plan_cache_invalidations_total");
  return c;
}
Counter &EvictionCounter() {
  static Counter &c =
      MetricsRegistry::Instance().GetCounter("mb2_plan_cache_evictions_total");
  return c;
}

void SubstituteExpr(Expression *expr, const std::vector<Value> &literals) {
  if (expr->type == ExprType::kConstant && expr->param_idx >= 0 &&
      static_cast<size_t>(expr->param_idx) < literals.size()) {
    expr->constant = literals[expr->param_idx];
  }
  for (auto &child : expr->children) SubstituteExpr(child.get(), literals);
}

void SubstituteNode(PlanNode *node, const std::vector<Value> &literals) {
  switch (node->type) {
    case PlanNodeType::kSeqScan: {
      auto *scan = node->As<SeqScanPlan>();
      if (scan->predicate) SubstituteExpr(scan->predicate.get(), literals);
      break;
    }
    case PlanNodeType::kIndexScan: {
      auto *scan = node->As<IndexScanPlan>();
      for (size_t i = 0; i < scan->key_lo_params.size() &&
                         i < scan->key_lo.size(); i++) {
        const int32_t p = scan->key_lo_params[i];
        if (p >= 0 && static_cast<size_t>(p) < literals.size()) {
          scan->key_lo[i] = literals[p];
        }
      }
      if (scan->predicate) SubstituteExpr(scan->predicate.get(), literals);
      break;
    }
    case PlanNodeType::kProjection: {
      auto *proj = node->As<ProjectionPlan>();
      for (auto &e : proj->exprs) SubstituteExpr(e.get(), literals);
      break;
    }
    case PlanNodeType::kAggregate: {
      auto *agg = node->As<AggregatePlan>();
      for (auto &term : agg->terms) {
        if (term.arg) SubstituteExpr(term.arg.get(), literals);
      }
      break;
    }
    case PlanNodeType::kUpdate: {
      auto *update = node->As<UpdatePlan>();
      for (auto &[col, expr] : update->sets) {
        SubstituteExpr(expr.get(), literals);
      }
      break;
    }
    case PlanNodeType::kSort: {
      auto *sort = node->As<SortPlan>();
      const int32_t p = sort->limit_param;
      if (p >= 0 && static_cast<size_t>(p) < literals.size()) {
        sort->limit = static_cast<uint64_t>(literals[p].AsInt());
      }
      break;
    }
    case PlanNodeType::kLimit: {
      auto *limit = node->As<LimitPlan>();
      const int32_t p = limit->limit_param;
      if (p >= 0 && static_cast<size_t>(p) < literals.size()) {
        limit->limit = static_cast<uint64_t>(literals[p].AsInt());
      }
      break;
    }
    default:
      break;
  }
  for (auto &child : node->children) SubstituteNode(child.get(), literals);
}

}  // namespace

std::string NormalizeTokens(const std::vector<Token> &tokens) {
  std::string out;
  out.reserve(tokens.size() * 6);
  for (const Token &t : tokens) {
    if (t.type == TokenType::kEnd) break;
    if (!out.empty()) out.push_back(' ');
    switch (t.type) {
      case TokenType::kInteger: out += "?i"; break;
      case TokenType::kFloat: out += "?f"; break;
      case TokenType::kString: out += "?s"; break;
      default: out += t.text; break;
    }
  }
  return out;
}

std::vector<Value> LiteralValues(const std::vector<Token> &tokens) {
  std::vector<Value> out;
  for (const Token &t : tokens) {
    switch (t.type) {
      case TokenType::kInteger: out.push_back(Value::Integer(t.int_value)); break;
      case TokenType::kFloat: out.push_back(Value::Double(t.float_value)); break;
      case TokenType::kString: out.push_back(Value::Varchar(t.text)); break;
      default: break;
    }
  }
  return out;
}

PlanPtr InstantiatePlan(const CachedPlan &entry,
                        const std::vector<Value> &literals) {
  PlanPtr plan = ClonePlan(*entry.plan);
  SubstituteNode(plan.get(), literals);
  return plan;
}

bool PlanCache::Enabled() {
  if (settings_->GetInt("sql_plan_cache_capacity") > 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  EvictToCapacityLocked(0);
  return false;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string &key, const std::vector<Value> &literals) {
  const uint64_t version = catalog_->version();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    auto &variants = it->second.variants;
    for (size_t v = 0; v < variants.size();) {
      if (variants[v]->catalog_version != version) {
        variants.erase(variants.begin() + static_cast<ptrdiff_t>(v));
        stats_.invalidations++;
        InvalidationCounter().Add();
        continue;
      }
      bool match = variants[v]->num_literals == literals.size();
      for (const auto &[ordinal, value] : variants[v]->structural_literals) {
        if (!match) break;
        match = static_cast<size_t>(ordinal) < literals.size() &&
                literals[ordinal] == value;
      }
      if (match) {
        recency_.splice(recency_.begin(), recency_, it->second.lru);
        stats_.hits++;
        HitCounter().Add();
        return variants[v];
      }
      v++;
    }
    if (variants.empty()) {
      recency_.erase(it->second.lru);
      entries_.erase(it);
    }
  }
  stats_.misses++;
  MissCounter().Add();
  return nullptr;
}

void PlanCache::Insert(const std::string &key,
                       std::shared_ptr<const CachedPlan> entry) {
  const int64_t capacity = settings_->GetInt("sql_plan_cache_capacity");
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity <= 0) {
    EvictToCapacityLocked(0);
    return;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    recency_.push_front(key);
    it = entries_.emplace(key, Slot{recency_.begin(), {}}).first;
  } else {
    recency_.splice(recency_.begin(), recency_, it->second.lru);
  }
  if (it->second.variants.size() >= kMaxVariantsPerKey) {
    it->second.variants.erase(it->second.variants.begin());
    stats_.evictions++;
    EvictionCounter().Add();
  }
  it->second.variants.push_back(std::move(entry));
  stats_.insertions++;
  EvictToCapacityLocked(static_cast<size_t>(capacity));
}

void PlanCache::EvictToCapacityLocked(size_t capacity) {
  while (entries_.size() > capacity) {
    const std::string &victim = recency_.back();
    entries_.erase(victim);
    recency_.pop_back();
    stats_.evictions++;
    EvictionCounter().Add();
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  recency_.clear();
}

size_t PlanCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mb2::sql
