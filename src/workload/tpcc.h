#pragma once

/// \file tpcc.h
/// TPC-C-style OLTP workload: nine tables, primary-key indexes, the five
/// transaction profiles (NewOrder, Payment, OrderStatus, Delivery,
/// StockLevel) implemented as multi-statement transactions over the plan
/// API. The CUSTOMER secondary index on (c_w_id, c_d_id, c_last) — the
/// paper's running self-driving example — is created/dropped dynamically;
/// Payment and OrderStatus fall back to a filtered sequential scan when it
/// is absent, which is exactly the performance cliff of Figs 1 and 11.

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "database.h"
#include "plan/plan_node.h"

namespace mb2 {

class TpccWorkload {
 public:
  static constexpr const char *kCustomerLastIndex = "idx_customer_last";

  TpccWorkload(Database *db, uint32_t warehouses, uint64_t seed = 11,
               uint32_t customers_per_district = 3000, uint32_t items = 10000)
      : db_(db), warehouses_(warehouses), seed_(seed),
        customers_per_district_(customers_per_district), items_(items) {}

  /// Creates tables + primary-key indexes and loads initial data
  /// (`with_customer_last_index` controls the paper's secondary index).
  void Load(bool with_customer_last_index = true);

  /// Creates the CUSTOMER (w, d, last) secondary-index schema (not built).
  IndexSchema CustomerLastIndexSchema() const;

  static const std::vector<std::string> &TransactionNames();

  /// Executes one transaction; returns latency µs, or -1 on abort.
  double RunTransaction(const std::string &name, Rng *rng);

  /// Standard mix (45/43/4/4/4).
  double RunRandomTransaction(Rng *rng);

  /// Representative cached plans per transaction type, for forecasting and
  /// QPPNet training. Multi-plan transactions contribute several plans.
  std::map<std::string, std::vector<const PlanNode *>> TemplatePlans();

  /// Drops cached templates (call after creating/dropping the customer
  /// last-name index so Payment/OrderStatus templates re-plan).
  void InvalidateTemplates() { template_cache_.clear(); }

  uint32_t warehouses() const { return warehouses_; }
  uint32_t customers_per_district() const { return customers_per_district_; }

 private:
  double NewOrder(Rng *rng);
  double Payment(Rng *rng);
  double OrderStatus(Rng *rng);
  double Delivery(Rng *rng);
  double StockLevel(Rng *rng);

  /// Index point-lookup plan helper.
  PlanPtr PkLookup(const std::string &table, const std::string &index,
                   Tuple key, std::vector<uint32_t> columns = {},
                   bool with_slots = false) const;
  /// Customer-by-last-name plan: secondary index scan if the index exists,
  /// otherwise a predicated sequential scan.
  PlanPtr CustomerByLast(int64_t w, int64_t d, int64_t last,
                         bool with_slots) const;

  Database *db_;
  uint32_t warehouses_;
  uint64_t seed_;
  uint32_t customers_per_district_;
  uint32_t items_;
  std::map<std::string, std::vector<PlanPtr>> template_cache_;
};

}  // namespace mb2
