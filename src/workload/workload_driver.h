#pragma once

/// \file workload_driver.h
/// Generic closed/open-loop workload driver: executes a caller-supplied
/// transaction function on N threads at a target per-thread rate for a
/// duration, recording a latency timeline. Plays the role of OLTP-Bench in
/// the paper's evaluation setup.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mb2 {

/// Abort-handling knobs: an aborted transaction (txn_fn returns negative) is
/// retried up to `max_txn_retries` times with exponential backoff + jitter
/// before counting as a give-up. Zero retries reproduces the old behavior.
struct DriverOptions {
  uint32_t max_txn_retries = 0;
  int64_t retry_base_backoff_us = 100;
  int64_t retry_max_backoff_us = 20000;
  double retry_jitter_frac = 0.25;
};

struct DriverResult {
  /// (completion time µs since process start, latency µs) per execution.
  std::vector<std::pair<int64_t, double>> latencies;
  double throughput = 0.0;    ///< executions per measured second
  double elapsed_s = 0.0;     ///< measured wall time of the run
  double avg_latency_us = 0.0;
  uint64_t committed = 0;  ///< attempts that returned a latency
  uint64_t aborts = 0;     ///< total aborted attempts (incl. retried ones)
  uint64_t retries = 0;    ///< re-attempts made after an abort
  uint64_t giveups = 0;    ///< transactions abandoned after the retry budget

  /// One-line throughput/abort/retry summary for bench output.
  std::string Summary() const;

  /// Average latency bucketed into fixed windows (for timeline plots).
  std::vector<std::pair<int64_t, double>> LatencyTimeline(int64_t bucket_us) const;
};

class WorkloadDriver {
 public:
  /// `txn_fn(rng)` runs one transaction/query and returns its latency in µs
  /// (negative = aborted, excluded from stats). `rate_per_thread` <= 0 means
  /// run closed-loop (back-to-back).
  static DriverResult Run(const std::function<double(Rng *)> &txn_fn,
                          uint32_t threads, double rate_per_thread,
                          double duration_s, uint64_t seed = 1234,
                          const DriverOptions &opts = {});

  /// Open-loop pacing step: the next nominal fire time after `next_fire`
  /// given that the clock now reads `now`. Normally `next_fire + period`;
  /// when the worker has fallen more than one period behind (a slow
  /// transaction), the schedule resyncs to `now` so the backlog is shed
  /// instead of replayed as a burst of zero-sleep fires.
  static int64_t AdvanceNextFire(int64_t next_fire, int64_t now, int64_t period);
};

}  // namespace mb2
