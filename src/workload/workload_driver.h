#pragma once

/// \file workload_driver.h
/// Generic closed/open-loop workload driver: executes a caller-supplied
/// transaction function on N threads at a target per-thread rate for a
/// duration, recording a latency timeline. Plays the role of OLTP-Bench in
/// the paper's evaluation setup.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace mb2 {

struct DriverResult {
  /// (completion time µs since process start, latency µs) per execution.
  std::vector<std::pair<int64_t, double>> latencies;
  double throughput = 0.0;  ///< executions per second
  double avg_latency_us = 0.0;

  /// Average latency bucketed into fixed windows (for timeline plots).
  std::vector<std::pair<int64_t, double>> LatencyTimeline(int64_t bucket_us) const;
};

class WorkloadDriver {
 public:
  /// `txn_fn(rng)` runs one transaction/query and returns its latency in µs
  /// (negative = aborted, excluded from stats). `rate_per_thread` <= 0 means
  /// run closed-loop (back-to-back).
  static DriverResult Run(const std::function<double(Rng *)> &txn_fn,
                          uint32_t threads, double rate_per_thread,
                          double duration_s, uint64_t seed = 1234);
};

}  // namespace mb2
