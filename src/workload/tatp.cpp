#include "workload/tatp.h"

#include "metrics/metrics_collector.h"

namespace mb2 {

void TatpWorkload::Load() {
  Catalog &catalog = db_->catalog();
  Rng rng(seed_);

  catalog.CreateTable("subscriber", Schema({{"s_id", TypeId::kInteger, 0},
                                            {"bit_1", TypeId::kInteger, 0},
                                            {"vlr_location", TypeId::kInteger, 0}}));
  catalog.CreateTable("access_info", Schema({{"ai_s_id", TypeId::kInteger, 0},
                                             {"ai_type", TypeId::kInteger, 0},
                                             {"ai_data", TypeId::kInteger, 0}}));
  catalog.CreateTable("special_facility",
                      Schema({{"sf_s_id", TypeId::kInteger, 0},
                              {"sf_type", TypeId::kInteger, 0},
                              {"is_active", TypeId::kInteger, 0}}));
  catalog.CreateTable("call_forwarding",
                      Schema({{"cf_s_id", TypeId::kInteger, 0},
                              {"cf_sf_type", TypeId::kInteger, 0},
                              {"start_time", TypeId::kInteger, 0},
                              {"end_time", TypeId::kInteger, 0}}));
  catalog.CreateIndex({"pk_subscriber", "subscriber", {0}, true});
  catalog.CreateIndex({"pk_access_info", "access_info", {0, 1}, true});
  catalog.CreateIndex({"pk_special_facility", "special_facility", {0, 1}, true});
  catalog.CreateIndex({"pk_call_forwarding", "call_forwarding", {0, 1, 2}, false});

  auto txn = db_->txn_manager().Begin();
  auto insert = [&](const std::string &table, Tuple row) {
    Table *t = catalog.GetTable(table);
    const SlotId slot = t->Insert(txn.get(), row);
    for (BPlusTree *index : catalog.GetTableIndexes(table)) {
      Tuple key;
      for (uint32_t c : index->schema().key_columns) key.push_back(row[c]);
      index->Insert(key, slot);
    }
  };
  for (int64_t s = 0; s < static_cast<int64_t>(subscribers_); s++) {
    insert("subscriber", {Value::Integer(s), Value::Integer(rng.Uniform(0, 1)),
                          Value::Integer(rng.Uniform(0, 1 << 16))});
    const int64_t ai_count = rng.Uniform(1, 4);
    for (int64_t a = 0; a < ai_count; a++) {
      insert("access_info",
             {Value::Integer(s), Value::Integer(a), Value::Integer(rng.Uniform(0, 255))});
    }
    const int64_t sf_count = rng.Uniform(1, 4);
    for (int64_t f = 0; f < sf_count; f++) {
      insert("special_facility", {Value::Integer(s), Value::Integer(f),
                                  Value::Integer(rng.Uniform(0, 1))});
      if (rng.Uniform(0, 3) == 0) {
        insert("call_forwarding",
               {Value::Integer(s), Value::Integer(f),
                Value::Integer(rng.Uniform(0, 2) * 8),
                Value::Integer(rng.Uniform(1, 3) * 8)});
      }
    }
  }
  db_->txn_manager().Commit(txn.get());
  db_->estimator().RefreshStats();
}

const std::vector<std::string> &TatpWorkload::TransactionNames() {
  static const std::vector<std::string> kNames = {
      "GetSubscriberData",    "GetNewDestination",  "GetAccessData",
      "UpdateSubscriberData", "UpdateLocation",     "InsertCallForwarding",
      "DeleteCallForwarding"};
  return kNames;
}

PlanPtr TatpWorkload::PkLookup(const std::string &table,
                               const std::string &index, Tuple key,
                               bool with_slots) const {
  auto scan = std::make_unique<IndexScanPlan>();
  scan->index = index;
  scan->table = table;
  scan->key_lo = std::move(key);
  scan->with_slots = with_slots;
  PlanPtr plan = FinalizePlan(std::move(scan), db_->catalog());
  db_->estimator().Estimate(plan.get());
  return plan;
}

double TatpWorkload::RunTransaction(const std::string &name, Rng *rng) {
  const int64_t start = NowMicros();
  const int64_t s = rng->Uniform(int64_t{0}, static_cast<int64_t>(subscribers_) - 1);
  auto txn = db_->txn_manager().Begin();
  Batch out;
  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return db_->engine().ExecuteInTxn(*plan, txn.get(), &out);
  };
  bool ok = true;

  if (name == "GetSubscriberData") {
    run(PkLookup("subscriber", "pk_subscriber", {Value::Integer(s)}));
  } else if (name == "GetNewDestination") {
    run(PkLookup("special_facility", "pk_special_facility",
                 {Value::Integer(s), Value::Integer(rng->Uniform(0, 3))}));
    run(PkLookup("call_forwarding", "pk_call_forwarding",
                 {Value::Integer(s), Value::Integer(rng->Uniform(0, 3))}));
  } else if (name == "GetAccessData") {
    run(PkLookup("access_info", "pk_access_info",
                 {Value::Integer(s), Value::Integer(rng->Uniform(0, 3))}));
  } else if (name == "UpdateSubscriberData") {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_subscriber";
    scan->table = "subscriber";
    scan->key_lo = {Value::Integer(s)};
    scan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "subscriber";
    update->sets.emplace_back(1, ConstInt(rng->Uniform(0, 1)));
    update->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(plan.get());
    ok = run(plan).ok();
  } else if (name == "UpdateLocation") {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_subscriber";
    scan->table = "subscriber";
    scan->key_lo = {Value::Integer(s)};
    scan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "subscriber";
    update->sets.emplace_back(2, ConstInt(rng->Uniform(0, 1 << 16)));
    update->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(plan.get());
    ok = run(plan).ok();
  } else if (name == "InsertCallForwarding") {
    auto insert = std::make_unique<InsertPlan>();
    insert->table = "call_forwarding";
    insert->rows.push_back({Value::Integer(s),
                            Value::Integer(rng->Uniform(0, 3)),
                            Value::Integer(rng->Uniform(0, 2) * 8),
                            Value::Integer(rng->Uniform(1, 3) * 8)});
    auto plan = FinalizePlan(std::move(insert), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  } else if (name == "DeleteCallForwarding") {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_call_forwarding";
    scan->table = "call_forwarding";
    scan->key_lo = {Value::Integer(s)};
    scan->with_slots = true;
    scan->limit = 1;
    auto del = std::make_unique<DeletePlan>();
    del->table = "call_forwarding";
    del->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(del), db_->catalog());
    db_->estimator().Estimate(plan.get());
    ok = run(plan).ok();
  } else {
    MB2_UNREACHABLE("unknown TATP transaction");
  }

  if (!ok) {
    db_->txn_manager().Abort(txn.get());
    return -1.0;
  }
  db_->txn_manager().Commit(txn.get());
  return static_cast<double>(NowMicros() - start);
}

double TatpWorkload::RunRandomTransaction(Rng *rng) {
  const int64_t pick = rng->Uniform(0, 99);
  if (pick < 35) return RunTransaction("GetSubscriberData", rng);
  if (pick < 45) return RunTransaction("GetNewDestination", rng);
  if (pick < 80) return RunTransaction("GetAccessData", rng);
  if (pick < 82) return RunTransaction("UpdateSubscriberData", rng);
  if (pick < 96) return RunTransaction("UpdateLocation", rng);
  if (pick < 98) return RunTransaction("InsertCallForwarding", rng);
  return RunTransaction("DeleteCallForwarding", rng);
}

std::map<std::string, std::vector<const PlanNode *>> TatpWorkload::TemplatePlans() {
  if (template_cache_.empty()) {
    std::vector<PlanPtr> get_sub;
    get_sub.push_back(PkLookup("subscriber", "pk_subscriber", {Value::Integer(1)}));
    template_cache_["GetSubscriberData"] = std::move(get_sub);
    std::vector<PlanPtr> get_access;
    get_access.push_back(PkLookup("access_info", "pk_access_info",
                                  {Value::Integer(1), Value::Integer(0)}));
    template_cache_["GetAccessData"] = std::move(get_access);
    std::vector<PlanPtr> get_dest;
    get_dest.push_back(PkLookup("special_facility", "pk_special_facility",
                                {Value::Integer(1), Value::Integer(0)}));
    get_dest.push_back(PkLookup("call_forwarding", "pk_call_forwarding",
                                {Value::Integer(1), Value::Integer(0)}));
    template_cache_["GetNewDestination"] = std::move(get_dest);
  }
  std::map<std::string, std::vector<const PlanNode *>> out;
  for (const auto &[name, plans] : template_cache_) {
    std::vector<const PlanNode *> raw;
    for (const auto &p : plans) raw.push_back(p.get());
    out[name] = std::move(raw);
  }
  return out;
}

}  // namespace mb2
