#pragma once

/// \file tpch.h
/// TPC-H-style OLAP workload: the eight-table schema (dates encoded as day
/// ordinals, categorical text columns as small integer domains) and six
/// representative query templates (Q1, Q3, Q4, Q5, Q6, Q14) built on the
/// plan API. Scale factor follows the official row counts (lineitem ≈ 6M ×
/// SF); the paper's 0.1/1/10 GB datasets map to SF ratios 1:10:100.

#include <map>
#include <string>
#include <vector>

#include "database.h"
#include "plan/plan_node.h"

namespace mb2 {

class TpchWorkload {
 public:
  /// `prefix` namespaces the tables so several scale factors can coexist in
  /// one catalog (the generalization experiments need exactly that).
  TpchWorkload(Database *db, double scale_factor, std::string prefix = "",
               uint64_t seed = 7)
      : db_(db), sf_(scale_factor), prefix_(std::move(prefix)), seed_(seed) {}

  /// Creates and populates all eight tables, then refreshes optimizer stats.
  void Load();

  static const std::vector<std::string> &QueryNames();

  /// Builds a fresh finalized plan with cardinality estimates filled.
  PlanPtr MakePlan(const std::string &name) const;

  /// Cached template plan (stable pointer; used in forecasts).
  const PlanNode *TemplatePlan(const std::string &name);

  /// All cached templates (name -> plan), for the concurrent runner.
  std::map<std::string, const PlanNode *> AllTemplates();

  double scale_factor() const { return sf_; }
  std::string TableName(const std::string &base) const { return prefix_ + base; }

 private:
  Database *db_;
  double sf_;
  std::string prefix_;
  uint64_t seed_;
  std::map<std::string, PlanPtr> cache_;
};

}  // namespace mb2
