#include "workload/smallbank.h"

#include "metrics/metrics_collector.h"

namespace mb2 {

void SmallBankWorkload::Load() {
  Catalog &catalog = db_->catalog();
  Rng rng(seed_);

  catalog.CreateTable("accounts", Schema({{"custid", TypeId::kInteger, 0},
                                          {"name", TypeId::kInteger, 0}}));
  catalog.CreateTable("savings", Schema({{"custid", TypeId::kInteger, 0},
                                         {"bal", TypeId::kDouble, 0}}));
  catalog.CreateTable("checking", Schema({{"custid", TypeId::kInteger, 0},
                                          {"bal", TypeId::kDouble, 0}}));
  catalog.CreateIndex({"pk_accounts", "accounts", {0}, true});
  catalog.CreateIndex({"pk_savings", "savings", {0}, true});
  catalog.CreateIndex({"pk_checking", "checking", {0}, true});

  auto txn = db_->txn_manager().Begin();
  auto insert = [&](const std::string &table, Tuple row) {
    Table *t = catalog.GetTable(table);
    const SlotId slot = t->Insert(txn.get(), row);
    for (BPlusTree *index : catalog.GetTableIndexes(table)) {
      Tuple key;
      for (uint32_t c : index->schema().key_columns) key.push_back(row[c]);
      index->Insert(key, slot);
    }
  };
  for (int64_t c = 0; c < static_cast<int64_t>(accounts_); c++) {
    insert("accounts", {Value::Integer(c), Value::Integer(rng.Uniform(0, 1 << 20))});
    insert("savings", {Value::Integer(c), Value::Double(rng.Uniform(10.0, 5000.0))});
    insert("checking", {Value::Integer(c), Value::Double(rng.Uniform(10.0, 5000.0))});
  }
  db_->txn_manager().Commit(txn.get());
  db_->estimator().RefreshStats();
}

const std::vector<std::string> &SmallBankWorkload::TransactionNames() {
  static const std::vector<std::string> kNames = {
      "Balance", "DepositChecking", "TransactSavings", "Amalgamate",
      "WriteCheck"};
  return kNames;
}

PlanPtr SmallBankWorkload::Lookup(const std::string &table, int64_t custid,
                                  bool with_slots) const {
  auto scan = std::make_unique<IndexScanPlan>();
  scan->index = "pk_" + table;
  scan->table = table;
  scan->key_lo = {Value::Integer(custid)};
  scan->with_slots = with_slots;
  PlanPtr plan = FinalizePlan(std::move(scan), db_->catalog());
  db_->estimator().Estimate(plan.get());
  return plan;
}

PlanPtr SmallBankWorkload::BalanceUpdate(const std::string &table,
                                         int64_t custid, double delta) const {
  auto scan = std::make_unique<IndexScanPlan>();
  scan->index = "pk_" + table;
  scan->table = table;
  scan->key_lo = {Value::Integer(custid)};
  scan->with_slots = true;
  auto update = std::make_unique<UpdatePlan>();
  update->table = table;
  update->sets.emplace_back(1, Arith(ArithOp::kAdd, ColRef(1), ConstDouble(delta)));
  update->children.push_back(std::move(scan));
  PlanPtr plan = FinalizePlan(std::move(update), db_->catalog());
  db_->estimator().Estimate(plan.get());
  return plan;
}

double SmallBankWorkload::RunTransaction(const std::string &name, Rng *rng) {
  const int64_t start = NowMicros();
  const int64_t c = rng->Uniform(int64_t{0}, static_cast<int64_t>(accounts_) - 1);
  auto txn = db_->txn_manager().Begin();
  Batch out;
  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return db_->engine().ExecuteInTxn(*plan, txn.get(), &out);
  };
  bool ok = true;

  if (name == "Balance") {
    run(Lookup("accounts", c));
    run(Lookup("savings", c));
    run(Lookup("checking", c));
  } else if (name == "DepositChecking") {
    run(Lookup("accounts", c));
    ok = run(BalanceUpdate("checking", c, rng->Uniform(1.0, 100.0))).ok();
  } else if (name == "TransactSavings") {
    run(Lookup("accounts", c));
    ok = run(BalanceUpdate("savings", c, rng->Uniform(-100.0, 100.0))).ok();
  } else if (name == "Amalgamate") {
    const int64_t c2 = rng->Uniform(int64_t{0}, static_cast<int64_t>(accounts_) - 1);
    run(Lookup("accounts", c));
    run(Lookup("savings", c));
    run(Lookup("checking", c));
    ok = run(BalanceUpdate("savings", c, -50.0)).ok() &&
         run(BalanceUpdate("checking", c2, 50.0)).ok();
  } else if (name == "WriteCheck") {
    run(Lookup("accounts", c));
    run(Lookup("savings", c));
    ok = run(BalanceUpdate("checking", c, -rng->Uniform(1.0, 50.0))).ok();
  } else {
    MB2_UNREACHABLE("unknown SmallBank transaction");
  }

  if (!ok) {
    db_->txn_manager().Abort(txn.get());
    return -1.0;
  }
  db_->txn_manager().Commit(txn.get());
  return static_cast<double>(NowMicros() - start);
}

double SmallBankWorkload::RunRandomTransaction(Rng *rng) {
  const int64_t pick = rng->Uniform(0, 99);
  if (pick < 15) return RunTransaction("Balance", rng);
  if (pick < 40) return RunTransaction("DepositChecking", rng);
  if (pick < 55) return RunTransaction("TransactSavings", rng);
  if (pick < 75) return RunTransaction("Amalgamate", rng);
  return RunTransaction("WriteCheck", rng);
}

std::map<std::string, std::vector<const PlanNode *>>
SmallBankWorkload::TemplatePlans() {
  if (template_cache_.empty()) {
    std::vector<PlanPtr> balance;
    balance.push_back(Lookup("accounts", 1));
    balance.push_back(Lookup("savings", 1));
    balance.push_back(Lookup("checking", 1));
    template_cache_["Balance"] = std::move(balance);
    std::vector<PlanPtr> deposit;
    deposit.push_back(Lookup("accounts", 1));
    template_cache_["DepositChecking"] = std::move(deposit);
  }
  std::map<std::string, std::vector<const PlanNode *>> out;
  for (const auto &[name, plans] : template_cache_) {
    std::vector<const PlanNode *> raw;
    for (const auto &p : plans) raw.push_back(p.get());
    out[name] = std::move(raw);
  }
  return out;
}

}  // namespace mb2
