#pragma once

/// \file smallbank.h
/// SmallBank workload (Alomari et al.): three tables and five transactions
/// modeling customers interacting with a bank branch. The simplest OLTP
/// benchmark — useful as the far end of the Fig 7b generalization sweep.

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "database.h"
#include "plan/plan_node.h"

namespace mb2 {

class SmallBankWorkload {
 public:
  SmallBankWorkload(Database *db, uint64_t accounts = 20000, uint64_t seed = 31)
      : db_(db), accounts_(accounts), seed_(seed) {}

  void Load();

  static const std::vector<std::string> &TransactionNames();

  double RunTransaction(const std::string &name, Rng *rng);
  double RunRandomTransaction(Rng *rng);

  std::map<std::string, std::vector<const PlanNode *>> TemplatePlans();

 private:
  PlanPtr Lookup(const std::string &table, int64_t custid,
                 bool with_slots = false) const;
  PlanPtr BalanceUpdate(const std::string &table, int64_t custid,
                        double delta) const;

  Database *db_;
  uint64_t accounts_;
  uint64_t seed_;
  std::map<std::string, std::vector<PlanPtr>> template_cache_;
};

}  // namespace mb2
