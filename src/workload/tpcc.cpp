#include "workload/tpcc.h"

#include <chrono>

#include "index/index_builder.h"

namespace mb2 {

namespace {

// customer(c_w_id, c_d_id, c_id, c_last, c_balance, c_ytd_payment)
constexpr uint32_t kCW = 0, kCD = 1, kCId = 2, kCLast = 3, kCBalance = 4;

/// Distinct last-name domain. The official benchmark uses 1000 names for
/// 3000 customers per district (~3 customers per name); preserve that
/// density when the workload is scaled down so by-last-name lookups match.
int64_t LastNameDomain(uint32_t customers_per_district) {
  return std::max<int64_t>(1, std::min<int64_t>(1000, customers_per_district / 3));
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void TpccWorkload::Load(bool with_customer_last_index) {
  Catalog &catalog = db_->catalog();
  Rng rng(seed_);

  Table *warehouse = catalog.CreateTable(
      "warehouse", Schema({{"w_id", TypeId::kInteger, 0},
                           {"w_ytd", TypeId::kDouble, 0}}));
  Table *district = catalog.CreateTable(
      "district", Schema({{"d_w_id", TypeId::kInteger, 0},
                          {"d_id", TypeId::kInteger, 0},
                          {"d_next_o_id", TypeId::kInteger, 0},
                          {"d_ytd", TypeId::kDouble, 0}}));
  Table *customer = catalog.CreateTable(
      "customer", Schema({{"c_w_id", TypeId::kInteger, 0},
                          {"c_d_id", TypeId::kInteger, 0},
                          {"c_id", TypeId::kInteger, 0},
                          {"c_last", TypeId::kInteger, 0},
                          {"c_balance", TypeId::kDouble, 0},
                          {"c_ytd_payment", TypeId::kDouble, 0}}));
  catalog.CreateTable("history", Schema({{"h_c_id", TypeId::kInteger, 0},
                                         {"h_amount", TypeId::kDouble, 0}}));
  catalog.CreateTable("neworder", Schema({{"no_w_id", TypeId::kInteger, 0},
                                          {"no_d_id", TypeId::kInteger, 0},
                                          {"no_o_id", TypeId::kInteger, 0}}));
  catalog.CreateTable("orders", Schema({{"o_w_id", TypeId::kInteger, 0},
                                        {"o_d_id", TypeId::kInteger, 0},
                                        {"o_id", TypeId::kInteger, 0},
                                        {"o_c_id", TypeId::kInteger, 0},
                                        {"o_ol_cnt", TypeId::kInteger, 0},
                                        {"o_carrier_id", TypeId::kInteger, 0}}));
  catalog.CreateTable("orderline", Schema({{"ol_w_id", TypeId::kInteger, 0},
                                           {"ol_d_id", TypeId::kInteger, 0},
                                           {"ol_o_id", TypeId::kInteger, 0},
                                           {"ol_number", TypeId::kInteger, 0},
                                           {"ol_i_id", TypeId::kInteger, 0},
                                           {"ol_amount", TypeId::kDouble, 0}}));
  Table *item = catalog.CreateTable(
      "item", Schema({{"i_id", TypeId::kInteger, 0},
                      {"i_price", TypeId::kDouble, 0}}));
  Table *stock = catalog.CreateTable(
      "stock", Schema({{"s_w_id", TypeId::kInteger, 0},
                       {"s_i_id", TypeId::kInteger, 0},
                       {"s_quantity", TypeId::kInteger, 0},
                       {"s_ytd", TypeId::kInteger, 0}}));

  // Primary-key indexes.
  catalog.CreateIndex({"pk_warehouse", "warehouse", {0}, true});
  catalog.CreateIndex({"pk_district", "district", {0, 1}, true});
  catalog.CreateIndex({"pk_customer", "customer", {0, 1, 2}, true});
  catalog.CreateIndex({"pk_neworder", "neworder", {0, 1, 2}, true});
  catalog.CreateIndex({"pk_orders", "orders", {0, 1, 2}, true});
  catalog.CreateIndex({"pk_orderline", "orderline", {0, 1, 2, 3}, true});
  catalog.CreateIndex({"pk_item", "item", {0}, true});
  catalog.CreateIndex({"pk_stock", "stock", {0, 1}, true});
  if (with_customer_last_index) {
    catalog.CreateIndex(CustomerLastIndexSchema());
  }

  auto txn = db_->txn_manager().Begin();
  ExecutionContext ctx(txn.get(), &catalog, &db_->settings());
  auto insert = [&](const std::string &table, Tuple row) {
    Table *t = catalog.GetTable(table);
    const SlotId slot = t->Insert(txn.get(), row);
    for (BPlusTree *index : catalog.GetTableIndexes(table)) {
      Tuple key;
      for (uint32_t c : index->schema().key_columns) key.push_back(row[c]);
      index->Insert(key, slot);
    }
  };
  MB2_UNUSED(warehouse);
  MB2_UNUSED(district);
  MB2_UNUSED(customer);
  MB2_UNUSED(item);
  MB2_UNUSED(stock);

  for (int64_t w = 0; w < static_cast<int64_t>(warehouses_); w++) {
    insert("warehouse", {Value::Integer(w), Value::Double(300000.0)});
    for (int64_t d = 0; d < 10; d++) {
      insert("district", {Value::Integer(w), Value::Integer(d),
                          Value::Integer(3001), Value::Double(30000.0)});
      for (int64_t c = 0; c < static_cast<int64_t>(customers_per_district_); c++) {
        insert("customer",
               {Value::Integer(w), Value::Integer(d), Value::Integer(c),
                Value::Integer(rng.Uniform(int64_t{0}, LastNameDomain(customers_per_district_) - 1)),
                Value::Double(-10.0), Value::Double(10.0)});
      }
    }
  }
  for (int64_t i = 0; i < static_cast<int64_t>(items_); i++) {
    insert("item", {Value::Integer(i), Value::Double(rng.Uniform(1.0, 100.0))});
  }
  for (int64_t w = 0; w < static_cast<int64_t>(warehouses_); w++) {
    for (int64_t i = 0; i < static_cast<int64_t>(items_); i++) {
      insert("stock", {Value::Integer(w), Value::Integer(i),
                       Value::Integer(rng.Uniform(int64_t{10}, int64_t{100})),
                       Value::Integer(0)});
    }
  }
  db_->txn_manager().Commit(txn.get());
  db_->estimator().RefreshStats();
}

IndexSchema TpccWorkload::CustomerLastIndexSchema() const {
  return IndexSchema{kCustomerLastIndex, "customer", {kCW, kCD, kCLast}, false};
}

const std::vector<std::string> &TpccWorkload::TransactionNames() {
  static const std::vector<std::string> kNames = {
      "NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"};
  return kNames;
}

PlanPtr TpccWorkload::PkLookup(const std::string &table,
                               const std::string &index, Tuple key,
                               std::vector<uint32_t> columns,
                               bool with_slots) const {
  auto scan = std::make_unique<IndexScanPlan>();
  scan->index = index;
  scan->table = table;
  scan->key_lo = std::move(key);
  scan->columns = std::move(columns);
  scan->with_slots = with_slots;
  PlanPtr plan = FinalizePlan(std::move(scan), db_->catalog());
  db_->estimator().Estimate(plan.get());
  return plan;
}

PlanPtr TpccWorkload::CustomerByLast(int64_t w, int64_t d, int64_t last,
                                     bool with_slots) const {
  const BPlusTree *secondary = db_->catalog().GetIndex(kCustomerLastIndex);
  if (secondary != nullptr && secondary->ready()) {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = kCustomerLastIndex;
    scan->table = "customer";
    scan->key_lo = {Value::Integer(w), Value::Integer(d), Value::Integer(last)};
    scan->with_slots = with_slots;
    PlanPtr plan = FinalizePlan(std::move(scan), db_->catalog());
    db_->estimator().Estimate(plan.get());
    return plan;
  }
  // No secondary index: full scan with residual predicate (Fig 1's slow path).
  auto scan = std::make_unique<SeqScanPlan>();
  scan->table = "customer";
  scan->with_slots = with_slots;
  scan->predicate =
      And(Cmp(CmpOp::kEq, ColRef(kCW), ConstInt(w)),
          And(Cmp(CmpOp::kEq, ColRef(kCD), ConstInt(d)),
              Cmp(CmpOp::kEq, ColRef(kCLast), ConstInt(last))));
  PlanPtr plan = FinalizePlan(std::move(scan), db_->catalog());
  db_->estimator().Estimate(plan.get());
  return plan;
}

double TpccWorkload::RunTransaction(const std::string &name, Rng *rng) {
  const int64_t start = NowUs();
  double latency = -1.0;
  if (name == "NewOrder") latency = NewOrder(rng);
  else if (name == "Payment") latency = Payment(rng);
  else if (name == "OrderStatus") latency = OrderStatus(rng);
  else if (name == "Delivery") latency = Delivery(rng);
  else if (name == "StockLevel") latency = StockLevel(rng);
  else MB2_UNREACHABLE("unknown TPC-C transaction");
  if (latency < 0.0) return -1.0;
  return static_cast<double>(NowUs() - start);
}

double TpccWorkload::RunRandomTransaction(Rng *rng) {
  const int64_t pick = rng->Uniform(int64_t{0}, int64_t{99});
  if (pick < 45) return RunTransaction("NewOrder", rng);
  if (pick < 88) return RunTransaction("Payment", rng);
  if (pick < 92) return RunTransaction("OrderStatus", rng);
  if (pick < 96) return RunTransaction("Delivery", rng);
  return RunTransaction("StockLevel", rng);
}

double TpccWorkload::NewOrder(Rng *rng) {
  const int64_t w = rng->Uniform(int64_t{0}, int64_t{warehouses_} - 1);
  const int64_t d = rng->Uniform(int64_t{0}, int64_t{9});
  const int64_t c = rng->NuRand(1023, 0, customers_per_district_ - 1);

  auto txn = db_->txn_manager().Begin();
  auto &engine = db_->engine();
  Batch out;

  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return engine.ExecuteInTxn(*plan, txn.get(), &out);
  };

  // District lookup for the next order id.
  auto dplan = PkLookup("district", "pk_district",
                        {Value::Integer(w), Value::Integer(d)}, {}, true);
  if (!run(dplan).ok() || out.rows.empty()) {
    db_->txn_manager().Abort(txn.get());
    return -1.0;
  }
  const int64_t o_id = out.rows[0][2].AsInt();

  // Bump d_next_o_id.
  {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_district";
    scan->table = "district";
    scan->key_lo = {Value::Integer(w), Value::Integer(d)};
    scan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "district";
    update->sets.emplace_back(2, Arith(ArithOp::kAdd, ColRef(2), ConstInt(1)));
    update->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(plan.get());
    if (!run(plan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }
  }

  // Customer lookup.
  auto cplan = PkLookup("customer", "pk_customer",
                        {Value::Integer(w), Value::Integer(d), Value::Integer(c)});
  run(cplan);

  // Insert the order + neworder rows.
  const int64_t ol_cnt = rng->Uniform(int64_t{5}, int64_t{15});
  {
    auto insert = std::make_unique<InsertPlan>();
    insert->table = "orders";
    insert->rows.push_back({Value::Integer(w), Value::Integer(d),
                            Value::Integer(o_id), Value::Integer(c),
                            Value::Integer(ol_cnt), Value::Integer(-1)});
    auto plan = FinalizePlan(std::move(insert), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  }
  {
    auto insert = std::make_unique<InsertPlan>();
    insert->table = "neworder";
    insert->rows.push_back(
        {Value::Integer(w), Value::Integer(d), Value::Integer(o_id)});
    auto plan = FinalizePlan(std::move(insert), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  }

  // Order lines: item lookup, stock update, orderline insert.
  for (int64_t ol = 0; ol < ol_cnt; ol++) {
    const int64_t i_id = rng->NuRand(8191, 0, items_ - 1);
    auto iplan = PkLookup("item", "pk_item", {Value::Integer(i_id)});
    run(iplan);
    const double price = out.rows.empty() ? 1.0 : out.rows[0][1].AsDouble();

    auto sscan = std::make_unique<IndexScanPlan>();
    sscan->index = "pk_stock";
    sscan->table = "stock";
    sscan->key_lo = {Value::Integer(w), Value::Integer(i_id)};
    sscan->with_slots = true;
    auto supdate = std::make_unique<UpdatePlan>();
    supdate->table = "stock";
    supdate->sets.emplace_back(2, Arith(ArithOp::kSub, ColRef(2), ConstInt(1)));
    supdate->sets.emplace_back(3, Arith(ArithOp::kAdd, ColRef(3), ConstInt(1)));
    supdate->children.push_back(std::move(sscan));
    auto splan = FinalizePlan(std::move(supdate), db_->catalog());
    db_->estimator().Estimate(splan.get());
    if (!run(splan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }

    auto insert = std::make_unique<InsertPlan>();
    insert->table = "orderline";
    insert->rows.push_back({Value::Integer(w), Value::Integer(d),
                            Value::Integer(o_id), Value::Integer(ol),
                            Value::Integer(i_id),
                            Value::Double(price * rng->Uniform(1.0, 10.0))});
    auto plan = FinalizePlan(std::move(insert), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  }

  db_->txn_manager().Commit(txn.get());
  return 1.0;
}

double TpccWorkload::Payment(Rng *rng) {
  const int64_t w = rng->Uniform(int64_t{0}, int64_t{warehouses_} - 1);
  const int64_t d = rng->Uniform(int64_t{0}, int64_t{9});
  const double amount = rng->Uniform(1.0, 5000.0);

  auto txn = db_->txn_manager().Begin();
  auto &engine = db_->engine();
  Batch out;
  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return engine.ExecuteInTxn(*plan, txn.get(), &out);
  };

  // Update warehouse and district YTD.
  {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_warehouse";
    scan->table = "warehouse";
    scan->key_lo = {Value::Integer(w)};
    scan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "warehouse";
    update->sets.emplace_back(
        1, Arith(ArithOp::kAdd, ColRef(1), ConstDouble(amount)));
    update->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(plan.get());
    if (!run(plan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }
  }
  {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_district";
    scan->table = "district";
    scan->key_lo = {Value::Integer(w), Value::Integer(d)};
    scan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "district";
    update->sets.emplace_back(
        3, Arith(ArithOp::kAdd, ColRef(3), ConstDouble(amount)));
    update->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(plan.get());
    if (!run(plan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }
  }

  // Customer selection: 60% by last name, 40% by id.
  PlanPtr cust_plan;
  if (rng->Uniform(int64_t{0}, int64_t{99}) < 60) {
    const int64_t last = rng->NuRand(255, 0, LastNameDomain(customers_per_district_) - 1);
    cust_plan = CustomerByLast(w, d, last, /*with_slots=*/true);
  } else {
    const int64_t c = rng->NuRand(1023, 0, customers_per_district_ - 1);
    cust_plan = PkLookup("customer", "pk_customer",
                         {Value::Integer(w), Value::Integer(d), Value::Integer(c)},
                         {}, /*with_slots=*/true);
  }
  run(cust_plan);
  if (out.rows.empty()) {
    db_->txn_manager().Commit(txn.get());
    return 1.0;
  }
  const int64_t c_id = out.rows[0][kCId].AsInt();

  // Update the (first matching) customer's balance.
  {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_customer";
    scan->table = "customer";
    scan->key_lo = {Value::Integer(w), Value::Integer(d), Value::Integer(c_id)};
    scan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "customer";
    update->sets.emplace_back(
        kCBalance, Arith(ArithOp::kSub, ColRef(kCBalance), ConstDouble(amount)));
    update->children.push_back(std::move(scan));
    auto plan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(plan.get());
    if (!run(plan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }
  }
  {
    auto insert = std::make_unique<InsertPlan>();
    insert->table = "history";
    insert->rows.push_back({Value::Integer(c_id), Value::Double(amount)});
    auto plan = FinalizePlan(std::move(insert), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  }

  db_->txn_manager().Commit(txn.get());
  return 1.0;
}

double TpccWorkload::OrderStatus(Rng *rng) {
  const int64_t w = rng->Uniform(int64_t{0}, int64_t{warehouses_} - 1);
  const int64_t d = rng->Uniform(int64_t{0}, int64_t{9});

  auto txn = db_->txn_manager().Begin();
  Batch out;
  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return db_->engine().ExecuteInTxn(*plan, txn.get(), &out);
  };

  if (rng->Uniform(int64_t{0}, int64_t{99}) < 60) {
    const int64_t last = rng->NuRand(255, 0, LastNameDomain(customers_per_district_) - 1);
    run(CustomerByLast(w, d, last, false));
  } else {
    const int64_t c = rng->NuRand(1023, 0, customers_per_district_ - 1);
    run(PkLookup("customer", "pk_customer",
                 {Value::Integer(w), Value::Integer(d), Value::Integer(c)}));
  }

  // Most recent orders for the district (prefix scan, small limit).
  {
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_orders";
    scan->table = "orders";
    scan->key_lo = {Value::Integer(w), Value::Integer(d)};
    scan->limit = 8;
    auto plan = FinalizePlan(std::move(scan), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  }
  if (!out.rows.empty()) {
    const int64_t o_id = out.rows[0][2].AsInt();
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_orderline";
    scan->table = "orderline";
    scan->key_lo = {Value::Integer(w), Value::Integer(d), Value::Integer(o_id)};
    auto plan = FinalizePlan(std::move(scan), db_->catalog());
    db_->estimator().Estimate(plan.get());
    run(plan);
  }
  db_->txn_manager().Commit(txn.get());
  return 1.0;
}

double TpccWorkload::Delivery(Rng *rng) {
  const int64_t w = rng->Uniform(int64_t{0}, int64_t{warehouses_} - 1);
  auto txn = db_->txn_manager().Begin();
  Batch out;
  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return db_->engine().ExecuteInTxn(*plan, txn.get(), &out);
  };

  for (int64_t d = 0; d < 10; d++) {
    // Oldest undelivered order.
    auto scan = std::make_unique<IndexScanPlan>();
    scan->index = "pk_neworder";
    scan->table = "neworder";
    scan->key_lo = {Value::Integer(w), Value::Integer(d)};
    scan->limit = 1;
    scan->with_slots = true;
    auto find = FinalizePlan(std::move(scan), db_->catalog());
    db_->estimator().Estimate(find.get());
    run(find);
    if (out.rows.empty()) continue;
    const int64_t o_id = out.rows[0][2].AsInt();

    // Delete the neworder entry.
    auto dscan = std::make_unique<IndexScanPlan>();
    dscan->index = "pk_neworder";
    dscan->table = "neworder";
    dscan->key_lo = {Value::Integer(w), Value::Integer(d), Value::Integer(o_id)};
    dscan->with_slots = true;
    auto del = std::make_unique<DeletePlan>();
    del->table = "neworder";
    del->children.push_back(std::move(dscan));
    auto dplan = FinalizePlan(std::move(del), db_->catalog());
    db_->estimator().Estimate(dplan.get());
    if (!run(dplan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }

    // Stamp the carrier on the order.
    auto oscan = std::make_unique<IndexScanPlan>();
    oscan->index = "pk_orders";
    oscan->table = "orders";
    oscan->key_lo = {Value::Integer(w), Value::Integer(d), Value::Integer(o_id)};
    oscan->with_slots = true;
    auto update = std::make_unique<UpdatePlan>();
    update->table = "orders";
    update->sets.emplace_back(5, ConstInt(rng->Uniform(int64_t{1}, int64_t{10})));
    update->children.push_back(std::move(oscan));
    auto uplan = FinalizePlan(std::move(update), db_->catalog());
    db_->estimator().Estimate(uplan.get());
    if (!run(uplan).ok()) {
      db_->txn_manager().Abort(txn.get());
      return -1.0;
    }
  }
  db_->txn_manager().Commit(txn.get());
  return 1.0;
}

double TpccWorkload::StockLevel(Rng *rng) {
  const int64_t w = rng->Uniform(int64_t{0}, int64_t{warehouses_} - 1);
  const int64_t d = rng->Uniform(int64_t{0}, int64_t{9});
  auto txn = db_->txn_manager().Begin();
  Batch out;
  auto run = [&](const PlanPtr &plan) {
    out.rows.clear();
    out.slots.clear();
    return db_->engine().ExecuteInTxn(*plan, txn.get(), &out);
  };

  // Recent order lines for the district.
  auto scan = std::make_unique<IndexScanPlan>();
  scan->index = "pk_orderline";
  scan->table = "orderline";
  scan->key_lo = {Value::Integer(w), Value::Integer(d)};
  scan->limit = 200;
  auto plan = FinalizePlan(std::move(scan), db_->catalog());
  db_->estimator().Estimate(plan.get());
  run(plan);

  // Check stock for up to 20 of the items seen.
  const size_t checks = std::min<size_t>(out.rows.size(), 20);
  std::vector<int64_t> item_ids;
  for (size_t i = 0; i < checks; i++) item_ids.push_back(out.rows[i][4].AsInt());
  for (int64_t i_id : item_ids) {
    run(PkLookup("stock", "pk_stock", {Value::Integer(w), Value::Integer(i_id)}));
  }
  MB2_UNUSED(rng);
  db_->txn_manager().Commit(txn.get());
  return 1.0;
}

std::map<std::string, std::vector<const PlanNode *>> TpccWorkload::TemplatePlans() {
  if (template_cache_.empty()) {
    Rng rng(seed_ + 999);
    const int64_t w = 0, d = 0;
    std::vector<PlanPtr> neworder;
    neworder.push_back(PkLookup("district", "pk_district",
                                {Value::Integer(w), Value::Integer(d)}));
    neworder.push_back(PkLookup("customer", "pk_customer",
                                {Value::Integer(w), Value::Integer(d),
                                 Value::Integer(1)}));
    for (int i = 0; i < 10; i++) {
      neworder.push_back(PkLookup("item", "pk_item", {Value::Integer(1)}));
      neworder.push_back(
          PkLookup("stock", "pk_stock", {Value::Integer(w), Value::Integer(1)}));
    }
    template_cache_["NewOrder"] = std::move(neworder);

    std::vector<PlanPtr> payment;
    payment.push_back(CustomerByLast(w, d, 1, false));
    payment.push_back(PkLookup("warehouse", "pk_warehouse", {Value::Integer(w)}));
    payment.push_back(PkLookup("district", "pk_district",
                               {Value::Integer(w), Value::Integer(d)}));
    template_cache_["Payment"] = std::move(payment);

    std::vector<PlanPtr> orderstatus;
    orderstatus.push_back(CustomerByLast(w, d, 1, false));
    {
      auto scan = std::make_unique<IndexScanPlan>();
      scan->index = "pk_orders";
      scan->table = "orders";
      scan->key_lo = {Value::Integer(w), Value::Integer(d)};
      scan->limit = 8;
      auto plan = FinalizePlan(std::move(scan), db_->catalog());
      db_->estimator().Estimate(plan.get());
      orderstatus.push_back(std::move(plan));
    }
    template_cache_["OrderStatus"] = std::move(orderstatus);
    MB2_UNUSED(rng);
  }
  std::map<std::string, std::vector<const PlanNode *>> out;
  for (const auto &[name, plans] : template_cache_) {
    std::vector<const PlanNode *> raw;
    for (const auto &p : plans) raw.push_back(p.get());
    out[name] = std::move(raw);
  }
  return out;
}

}  // namespace mb2
