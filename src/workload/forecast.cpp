#include "workload/forecast.h"

// Header-only for now; anchors the header in the build.
