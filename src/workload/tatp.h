#pragma once

/// \file tatp.h
/// TATP-style workload: four tables and seven short transactions modeling a
/// cellphone registration service (Neuvonen et al.). Mostly index point
/// reads with a small write mix — the lightest of the OLTP benchmarks.

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "database.h"
#include "plan/plan_node.h"

namespace mb2 {

class TatpWorkload {
 public:
  TatpWorkload(Database *db, uint64_t subscribers = 20000, uint64_t seed = 23)
      : db_(db), subscribers_(subscribers), seed_(seed) {}

  void Load();

  static const std::vector<std::string> &TransactionNames();

  /// Executes one transaction; returns latency µs (-1 on abort).
  double RunTransaction(const std::string &name, Rng *rng);
  /// Standard TATP mix.
  double RunRandomTransaction(Rng *rng);

  std::map<std::string, std::vector<const PlanNode *>> TemplatePlans();

 private:
  PlanPtr PkLookup(const std::string &table, const std::string &index,
                   Tuple key, bool with_slots = false) const;

  Database *db_;
  uint64_t subscribers_;
  uint64_t seed_;
  std::map<std::string, std::vector<PlanPtr>> template_cache_;
};

}  // namespace mb2
