#include "workload/tpch.h"

#include "common/rng.h"

namespace mb2 {

namespace {

// Column indexes, kept in one place so query builders stay readable.
// customer(c_custkey, c_nationkey, c_mktsegment, c_acctbal)
constexpr uint32_t kCCustkey = 0, kCNationkey = 1, kCMktsegment = 2;
// orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate,
//        o_orderpriority)
constexpr uint32_t kOOrderkey = 0, kOCustkey = 1, kOOrderdate = 4,
                   kOOrderpriority = 5;
// lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice,
//          l_discount, l_tax, l_returnflag, l_linestatus, l_shipdate)
constexpr uint32_t kLOrderkey = 0, kLPartkey = 1, kLSuppkey = 2, kLQuantity = 3,
                   kLExtendedprice = 4, kLDiscount = 5, kLReturnflag = 7,
                   kLLinestatus = 8, kLShipdate = 9;
// part(p_partkey, p_type, p_retailprice)
constexpr uint32_t kPPartkey = 0, kPType = 1;
// supplier(s_suppkey, s_nationkey, s_acctbal)
constexpr uint32_t kSSuppkey = 0, kSNationkey = 1;

constexpr int64_t kMaxDate = 2555;  // ~7 years of day ordinals

}  // namespace

void TpchWorkload::Load() {
  Catalog &catalog = db_->catalog();
  Rng rng(seed_);

  const auto rows_of = [this](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * sf_));
  };
  const uint64_t n_customer = rows_of(150000);
  const uint64_t n_orders = rows_of(1500000);
  const uint64_t n_part = rows_of(200000);
  const uint64_t n_supplier = rows_of(10000);

  Table *region = catalog.CreateTable(
      TableName("region"), Schema({{"r_regionkey", TypeId::kInteger, 0}}));
  Table *nation = catalog.CreateTable(
      TableName("nation"), Schema({{"n_nationkey", TypeId::kInteger, 0},
                                   {"n_regionkey", TypeId::kInteger, 0}}));
  Table *supplier = catalog.CreateTable(
      TableName("supplier"), Schema({{"s_suppkey", TypeId::kInteger, 0},
                                     {"s_nationkey", TypeId::kInteger, 0},
                                     {"s_acctbal", TypeId::kDouble, 0}}));
  Table *customer = catalog.CreateTable(
      TableName("customer"), Schema({{"c_custkey", TypeId::kInteger, 0},
                                     {"c_nationkey", TypeId::kInteger, 0},
                                     {"c_mktsegment", TypeId::kInteger, 0},
                                     {"c_acctbal", TypeId::kDouble, 0}}));
  Table *part = catalog.CreateTable(
      TableName("part"), Schema({{"p_partkey", TypeId::kInteger, 0},
                                 {"p_type", TypeId::kInteger, 0},
                                 {"p_retailprice", TypeId::kDouble, 0}}));
  Table *orders = catalog.CreateTable(
      TableName("orders"), Schema({{"o_orderkey", TypeId::kInteger, 0},
                                   {"o_custkey", TypeId::kInteger, 0},
                                   {"o_orderstatus", TypeId::kInteger, 0},
                                   {"o_totalprice", TypeId::kDouble, 0},
                                   {"o_orderdate", TypeId::kInteger, 0},
                                   {"o_orderpriority", TypeId::kInteger, 0}}));
  Table *lineitem = catalog.CreateTable(
      TableName("lineitem"), Schema({{"l_orderkey", TypeId::kInteger, 0},
                                     {"l_partkey", TypeId::kInteger, 0},
                                     {"l_suppkey", TypeId::kInteger, 0},
                                     {"l_quantity", TypeId::kDouble, 0},
                                     {"l_extendedprice", TypeId::kDouble, 0},
                                     {"l_discount", TypeId::kDouble, 0},
                                     {"l_tax", TypeId::kDouble, 0},
                                     {"l_returnflag", TypeId::kInteger, 0},
                                     {"l_linestatus", TypeId::kInteger, 0},
                                     {"l_shipdate", TypeId::kInteger, 0}}));
  MB2_ASSERT(region && nation && supplier && customer && part && orders &&
                 lineitem,
             "TPC-H table name collision (duplicate prefix?)");

  auto txn = db_->txn_manager().Begin();
  for (int64_t r = 0; r < 5; r++) region->Insert(txn.get(), {Value::Integer(r)});
  for (int64_t n = 0; n < 25; n++) {
    nation->Insert(txn.get(), {Value::Integer(n), Value::Integer(n % 5)});
  }
  for (uint64_t s = 0; s < n_supplier; s++) {
    supplier->Insert(txn.get(), {Value::Integer(static_cast<int64_t>(s)),
                                 Value::Integer(rng.Uniform(0, 24)),
                                 Value::Double(rng.Uniform(-999.0, 9999.0))});
  }
  for (uint64_t c = 0; c < n_customer; c++) {
    customer->Insert(txn.get(), {Value::Integer(static_cast<int64_t>(c)),
                                 Value::Integer(rng.Uniform(0, 24)),
                                 Value::Integer(rng.Uniform(0, 4)),
                                 Value::Double(rng.Uniform(-999.0, 9999.0))});
  }
  for (uint64_t p = 0; p < n_part; p++) {
    part->Insert(txn.get(), {Value::Integer(static_cast<int64_t>(p)),
                             Value::Integer(rng.Uniform(0, 9)),
                             Value::Double(rng.Uniform(900.0, 2000.0))});
  }
  for (uint64_t o = 0; o < n_orders; o++) {
    orders->Insert(
        txn.get(),
        {Value::Integer(static_cast<int64_t>(o)),
         Value::Integer(rng.Uniform(0, static_cast<int64_t>(n_customer) - 1)),
         Value::Integer(rng.Uniform(0, 2)),
         Value::Double(rng.Uniform(1000.0, 400000.0)),
         Value::Integer(rng.Uniform(0, kMaxDate)),
         Value::Integer(rng.Uniform(0, 4))});
    // ~4 lineitems per order (official average).
    const int64_t items = rng.Uniform(1, 7);
    for (int64_t l = 0; l < items; l++) {
      lineitem->Insert(
          txn.get(),
          {Value::Integer(static_cast<int64_t>(o)),
           Value::Integer(rng.Uniform(0, static_cast<int64_t>(n_part) - 1)),
           Value::Integer(rng.Uniform(0, static_cast<int64_t>(n_supplier) - 1)),
           Value::Double(rng.Uniform(1.0, 50.0)),
           Value::Double(rng.Uniform(900.0, 100000.0)),
           Value::Double(rng.Uniform(0.0, 0.1)),
           Value::Double(rng.Uniform(0.0, 0.08)),
           Value::Integer(rng.Uniform(0, 2)), Value::Integer(rng.Uniform(0, 1)),
           Value::Integer(rng.Uniform(0, kMaxDate))});
    }
  }
  db_->txn_manager().Commit(txn.get());
  db_->estimator().RefreshStats();
}

const std::vector<std::string> &TpchWorkload::QueryNames() {
  static const std::vector<std::string> kNames = {"Q1", "Q3", "Q4",
                                                  "Q5", "Q6", "Q14"};
  return kNames;
}

PlanPtr TpchWorkload::MakePlan(const std::string &name) const {
  PlanPtr root;

  if (name == "Q1") {
    // Pricing summary: filtered scan -> group by (returnflag, linestatus).
    auto scan = std::make_unique<SeqScanPlan>();
    scan->table = TableName("lineitem");
    scan->columns = {kLQuantity, kLExtendedprice, kLDiscount, kLReturnflag,
                     kLLinestatus, kLShipdate};
    // Projected indexes: qty 0, price 1, disc 2, rf 3, ls 4, sd 5.
    scan->predicate = Cmp(CmpOp::kLe, ColRef(5), ConstInt(kMaxDate - 90));
    auto agg = std::make_unique<AggregatePlan>();
    agg->group_by = {3, 4};
    agg->terms.push_back({AggFunc::kSum, ColRef(0)});
    agg->terms.push_back({AggFunc::kSum, ColRef(1)});
    agg->terms.push_back(
        {AggFunc::kSum,
         Arith(ArithOp::kMul, ColRef(1),
               Arith(ArithOp::kSub, ConstDouble(1.0), ColRef(2)))});
    agg->terms.push_back({AggFunc::kAvg, ColRef(2)});
    agg->terms.push_back({AggFunc::kCount, nullptr});
    agg->children.push_back(std::move(scan));
    auto sort = std::make_unique<SortPlan>();
    sort->sort_keys = {0, 1};
    sort->descending = {false, false};
    sort->children.push_back(std::move(agg));
    root = std::move(sort);
  } else if (name == "Q3") {
    // Shipping priority: customer ⋈ orders ⋈ lineitem, top-10 revenue.
    auto cust = std::make_unique<SeqScanPlan>();
    cust->table = TableName("customer");
    cust->columns = {kCCustkey, kCMktsegment};
    cust->predicate = Cmp(CmpOp::kEq, ColRef(1), ConstInt(1));
    auto ord = std::make_unique<SeqScanPlan>();
    ord->table = TableName("orders");
    ord->columns = {kOOrderkey, kOCustkey, kOOrderdate};
    ord->predicate = Cmp(CmpOp::kLt, ColRef(2), ConstInt(kMaxDate / 2));
    auto join1 = std::make_unique<HashJoinPlan>();  // cust ⋈ orders
    join1->build_keys = {0};   // c_custkey
    join1->probe_keys = {1};   // o_custkey (probe-side index 1)
    join1->children.push_back(std::move(cust));
    join1->children.push_back(std::move(ord));
    // join1 output: [c_custkey, c_mktsegment, o_orderkey, o_custkey, o_date]
    auto line = std::make_unique<SeqScanPlan>();
    line->table = TableName("lineitem");
    line->columns = {kLOrderkey, kLExtendedprice, kLDiscount, kLShipdate};
    line->predicate = Cmp(CmpOp::kGt, ColRef(3), ConstInt(kMaxDate / 2));
    auto join2 = std::make_unique<HashJoinPlan>();  // join1 ⋈ lineitem
    join2->build_keys = {2};  // o_orderkey
    join2->probe_keys = {0};  // l_orderkey
    join2->children.push_back(std::move(join1));
    join2->children.push_back(std::move(line));
    // join2 output: [.. 5 cols ..][l_orderkey, l_price, l_disc, l_shipdate]
    auto agg = std::make_unique<AggregatePlan>();
    agg->group_by = {2};  // o_orderkey
    agg->terms.push_back(
        {AggFunc::kSum,
         Arith(ArithOp::kMul, ColRef(6),
               Arith(ArithOp::kSub, ConstDouble(1.0), ColRef(7)))});
    agg->children.push_back(std::move(join2));
    auto sort = std::make_unique<SortPlan>();
    sort->sort_keys = {1};
    sort->descending = {true};
    sort->limit = 10;
    sort->children.push_back(std::move(agg));
    root = std::move(sort);
  } else if (name == "Q4") {
    // Order priority checking (join approximation of EXISTS).
    auto ord = std::make_unique<SeqScanPlan>();
    ord->table = TableName("orders");
    ord->columns = {kOOrderkey, kOOrderdate, kOOrderpriority};
    ord->predicate = And(Cmp(CmpOp::kGe, ColRef(1), ConstInt(800)),
                         Cmp(CmpOp::kLt, ColRef(1), ConstInt(900)));
    auto line = std::make_unique<SeqScanPlan>();
    line->table = TableName("lineitem");
    line->columns = {kLOrderkey, kLShipdate};
    line->predicate = Cmp(CmpOp::kLt, ColRef(1), ConstInt(kMaxDate / 4));
    auto join = std::make_unique<HashJoinPlan>();
    join->build_keys = {0};
    join->probe_keys = {0};
    join->children.push_back(std::move(ord));
    join->children.push_back(std::move(line));
    auto agg = std::make_unique<AggregatePlan>();
    agg->group_by = {2};  // o_orderpriority
    agg->terms.push_back({AggFunc::kCount, nullptr});
    agg->children.push_back(std::move(join));
    auto sort = std::make_unique<SortPlan>();
    sort->sort_keys = {0};
    sort->descending = {false};
    sort->children.push_back(std::move(agg));
    root = std::move(sort);
  } else if (name == "Q5") {
    // Local supplier volume: customer ⋈ orders ⋈ lineitem ⋈ supplier.
    auto cust = std::make_unique<SeqScanPlan>();
    cust->table = TableName("customer");
    cust->columns = {kCCustkey, kCNationkey};
    auto ord = std::make_unique<SeqScanPlan>();
    ord->table = TableName("orders");
    ord->columns = {kOOrderkey, kOCustkey, kOOrderdate};
    ord->predicate = Cmp(CmpOp::kLt, ColRef(2), ConstInt(kMaxDate / 5));
    auto join1 = std::make_unique<HashJoinPlan>();
    join1->build_keys = {0};
    join1->probe_keys = {1};
    join1->children.push_back(std::move(cust));
    join1->children.push_back(std::move(ord));
    // [c_custkey, c_nationkey, o_orderkey, o_custkey, o_date]
    auto line = std::make_unique<SeqScanPlan>();
    line->table = TableName("lineitem");
    line->columns = {kLOrderkey, kLSuppkey, kLExtendedprice, kLDiscount};
    auto join2 = std::make_unique<HashJoinPlan>();
    join2->build_keys = {2};
    join2->probe_keys = {0};
    join2->children.push_back(std::move(join1));
    join2->children.push_back(std::move(line));
    // [.. 5 ..][l_orderkey, l_suppkey, l_price, l_disc] -> 9 cols
    auto supp = std::make_unique<SeqScanPlan>();
    supp->table = TableName("supplier");
    supp->columns = {kSSuppkey, kSNationkey};
    auto join3 = std::make_unique<HashJoinPlan>();
    join3->build_keys = {0};   // s_suppkey (supplier is the build side)
    join3->probe_keys = {6};   // l_suppkey in join2 output
    join3->children.push_back(std::move(supp));
    join3->children.push_back(std::move(join2));
    // [s_suppkey, s_nationkey][.. join2's 9 ..] -> 11 cols
    auto agg = std::make_unique<AggregatePlan>();
    agg->group_by = {1};  // s_nationkey
    agg->terms.push_back(
        {AggFunc::kSum,
         Arith(ArithOp::kMul, ColRef(9),
               Arith(ArithOp::kSub, ConstDouble(1.0), ColRef(10)))});
    agg->children.push_back(std::move(join3));
    auto sort = std::make_unique<SortPlan>();
    sort->sort_keys = {1};
    sort->descending = {true};
    sort->children.push_back(std::move(agg));
    root = std::move(sort);
  } else if (name == "Q6") {
    // Forecasting revenue change: tight filter + scalar aggregate.
    auto scan = std::make_unique<SeqScanPlan>();
    scan->table = TableName("lineitem");
    scan->columns = {kLQuantity, kLExtendedprice, kLDiscount, kLShipdate};
    scan->predicate =
        And(And(Cmp(CmpOp::kGe, ColRef(3), ConstInt(365)),
                Cmp(CmpOp::kLt, ColRef(3), ConstInt(730))),
            And(Cmp(CmpOp::kGe, ColRef(2), ConstDouble(0.02)),
                And(Cmp(CmpOp::kLe, ColRef(2), ConstDouble(0.06)),
                    Cmp(CmpOp::kLt, ColRef(0), ConstDouble(24.0)))));
    auto agg = std::make_unique<AggregatePlan>();
    agg->terms.push_back(
        {AggFunc::kSum, Arith(ArithOp::kMul, ColRef(1), ColRef(2))});
    agg->children.push_back(std::move(scan));
    root = std::move(agg);
  } else if (name == "Q14") {
    // Promotion effect: part ⋈ lineitem with projected revenue share.
    auto part = std::make_unique<SeqScanPlan>();
    part->table = TableName("part");
    part->columns = {kPPartkey, kPType};
    auto line = std::make_unique<SeqScanPlan>();
    line->table = TableName("lineitem");
    line->columns = {kLPartkey, kLExtendedprice, kLDiscount, kLShipdate};
    line->predicate = And(Cmp(CmpOp::kGe, ColRef(3), ConstInt(1000)),
                          Cmp(CmpOp::kLt, ColRef(3), ConstInt(1030)));
    auto join = std::make_unique<HashJoinPlan>();
    join->build_keys = {0};
    join->probe_keys = {0};
    join->children.push_back(std::move(part));
    join->children.push_back(std::move(line));
    // [p_partkey, p_type][l_partkey, l_price, l_disc, l_shipdate]
    auto agg = std::make_unique<AggregatePlan>();
    agg->group_by = {1};  // p_type
    agg->terms.push_back(
        {AggFunc::kSum,
         Arith(ArithOp::kMul, ColRef(3),
               Arith(ArithOp::kSub, ConstDouble(1.0), ColRef(4)))});
    agg->children.push_back(std::move(join));
    auto sort = std::make_unique<SortPlan>();
    sort->sort_keys = {0};
    sort->descending = {false};
    sort->children.push_back(std::move(agg));
    root = std::move(sort);
  } else {
    MB2_UNREACHABLE("unknown TPC-H query name");
  }

  PlanPtr plan = FinalizePlan(std::move(root), db_->catalog());
  db_->estimator().Estimate(plan.get());
  return plan;
}

const PlanNode *TpchWorkload::TemplatePlan(const std::string &name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) return it->second.get();
  PlanPtr plan = MakePlan(name);
  const PlanNode *raw = plan.get();
  cache_[name] = std::move(plan);
  return raw;
}

std::map<std::string, const PlanNode *> TpchWorkload::AllTemplates() {
  std::map<std::string, const PlanNode *> out;
  for (const auto &name : QueryNames()) out[name] = TemplatePlan(name);
  return out;
}

}  // namespace mb2
