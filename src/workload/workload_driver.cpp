#include "workload/workload_driver.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/retry.h"
#include "metrics/metrics_collector.h"

namespace mb2 {

std::string DriverResult::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%.1f txn/s, avg %.1f us | committed=%llu aborts=%llu "
                "retries=%llu giveups=%llu",
                throughput, avg_latency_us,
                static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborts),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(giveups));
  return buf;
}

std::vector<std::pair<int64_t, double>> DriverResult::LatencyTimeline(
    int64_t bucket_us) const {
  std::vector<std::pair<int64_t, double>> out;
  if (latencies.empty()) return out;
  auto sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  int64_t bucket_start = sorted.front().first;
  double sum = 0.0;
  size_t count = 0;
  for (const auto &[t, lat] : sorted) {
    if (t >= bucket_start + bucket_us) {
      if (count > 0) out.emplace_back(bucket_start, sum / count);
      while (t >= bucket_start + bucket_us) bucket_start += bucket_us;
      sum = 0.0;
      count = 0;
    }
    sum += lat;
    count++;
  }
  if (count > 0) out.emplace_back(bucket_start, sum / count);
  return out;
}

int64_t WorkloadDriver::AdvanceNextFire(int64_t next_fire, int64_t now,
                                        int64_t period) {
  next_fire += period;
  // Fallen more than one period behind: resync to the present instead of
  // scheduling a burst of already-due fires that would all sleep zero.
  if (now - next_fire > period) next_fire = now;
  return next_fire;
}

DriverResult WorkloadDriver::Run(const std::function<double(Rng *)> &txn_fn,
                                 uint32_t threads, double rate_per_thread,
                                 double duration_s, uint64_t seed,
                                 const DriverOptions &opts) {
  DriverResult result;
  std::mutex result_mutex;
  const int64_t start_time = NowMicros();
  const int64_t end_time = start_time + static_cast<int64_t>(duration_s * 1e6);
  const int64_t period_us =
      rate_per_thread > 0.0
          ? std::max<int64_t>(1, static_cast<int64_t>(1e6 / rate_per_thread))
          : 0;
  const RetryPolicy retry_policy{opts.max_txn_retries + 1,
                                 opts.retry_base_backoff_us,
                                 opts.retry_max_backoff_us,
                                 opts.retry_jitter_frac};

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      Rng rng(seed + t * 7919);
      std::vector<std::pair<int64_t, double>> local;
      uint64_t committed = 0, aborts = 0, retries = 0, giveups = 0;
      int64_t next_fire = NowMicros();
      while (NowMicros() < end_time) {
        if (period_us > 0) {
          const int64_t now = NowMicros();
          if (now < next_fire) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(next_fire - now));
          }
          next_fire = AdvanceNextFire(next_fire, NowMicros(), period_us);
        }
        // One logical transaction: the first attempt plus up to
        // max_txn_retries backed-off re-attempts on abort.
        for (uint32_t attempt = 1;; attempt++) {
          const double latency = txn_fn(&rng);
          if (latency >= 0.0) {
            local.emplace_back(NowMicros(), latency);
            committed++;
            break;
          }
          aborts++;
          if (attempt > opts.max_txn_retries || NowMicros() >= end_time) {
            giveups++;
            break;
          }
          retries++;
          std::this_thread::sleep_for(std::chrono::microseconds(
              BackoffDelayUs(retry_policy, attempt, &rng)));
        }
      }
      std::lock_guard<std::mutex> lock(result_mutex);
      result.latencies.insert(result.latencies.end(), local.begin(), local.end());
      result.committed += committed;
      result.aborts += aborts;
      result.retries += retries;
      result.giveups += giveups;
    });
  }
  for (auto &w : workers) w.join();

  // Throughput over the measured wall time, not the nominal duration: a run
  // whose last transactions straggle past end_time would otherwise report
  // inflated txn/s.
  result.elapsed_s =
      static_cast<double>(NowMicros() - start_time) / 1e6;
  if (!result.latencies.empty()) {
    double sum = 0.0;
    for (const auto &[t, lat] : result.latencies) sum += lat;
    result.avg_latency_us = sum / static_cast<double>(result.latencies.size());
    result.throughput = static_cast<double>(result.latencies.size()) /
                        std::max(result.elapsed_s, 1e-9);
  }
  return result;
}

}  // namespace mb2
