#pragma once

/// \file forecast.h
/// Workload-forecast representation. MB2 assumes a forecasting subsystem
/// (Ma et al., SIGMOD'18) supplies, per fixed interval, the expected arrival
/// rate of each known query template; it never needs exact arrival times
/// (Sec 3). Benches construct forecasts directly from their ground-truth
/// schedules ("perfect forecast", as in Sec 8.7).

#include <memory>
#include <string>
#include <vector>

#include "plan/plan_node.h"

namespace mb2 {

/// One query template forecast to arrive during the interval.
struct ForecastEntry {
  const PlanNode *plan = nullptr;  ///< cached prepared-statement plan
  double arrival_rate = 0.0;       ///< executions per second
  std::string label;               ///< template name (diagnostics)
};

struct WorkloadForecast {
  double interval_s = 10.0;     ///< forecast granularity
  uint32_t num_threads = 1;     ///< worker threads executing the workload
  std::vector<ForecastEntry> entries;

  /// Total queries expected in the interval.
  double TotalQueries() const {
    double total = 0.0;
    for (const auto &e : entries) total += e.arrival_rate * interval_s;
    return total;
  }
};

}  // namespace mb2
