#pragma once

/// \file data_repository.h
/// Training-data repository: persists drained OU records as one CSV per OU
/// (feature columns + the nine labels). Lets benches reuse expensive runner
/// output across processes and lets Table 2 report the data footprint.

#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/metrics_collector.h"

namespace mb2 {

class ThreadPool;

class DataRepository {
 public:
  explicit DataRepository(std::string dir) : dir_(std::move(dir)) {}

  /// Writes records grouped per OU (overwrites existing files). With a pool,
  /// each per-OU file is written by its own task (files are independent);
  /// the first write error is reported either way.
  Status Save(const std::vector<OuRecord> &records,
              ThreadPool *pool = nullptr) const;

  /// Loads every OU file found in the directory.
  Result<std::vector<OuRecord>> LoadAll() const;

  /// Sum of the repository's file sizes in bytes (Table 2's data size).
  uint64_t TotalBytes() const;

  const std::string &dir() const { return dir_; }

 private:
  std::string FilePath(OuType type) const;
  std::string dir_;
};

}  // namespace mb2
