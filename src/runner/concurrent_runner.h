#pragma once

/// \file concurrent_runner.h
/// Concurrent runners (Sec 6.3): execute end-to-end query mixes on multiple
/// threads at controlled submission rates to produce the interference
/// model's training data. Sweeps (1) query subsets, (2) thread counts, and
/// (3) submission rates, each combination for a short fixed period.

#include <map>
#include <string>
#include <vector>

#include "database.h"
#include "metrics/metrics_collector.h"
#include "plan/plan_node.h"

namespace mb2 {

struct ConcurrentRunnerConfig {
  std::vector<uint32_t> thread_counts = {1, 3, 5, 7};
  /// Per-thread submission rates (queries/sec); <= 0 means closed loop.
  std::vector<double> rates = {-1.0, 20.0};
  double period_s = 2.0;  ///< execution time per combination
  uint32_t subset_count = 3;  ///< random query subsets tried
  /// Aborted MVCC transactions are retried (with backoff) this many times
  /// before the driver gives up on them.
  uint32_t txn_retries = 2;

  static ConcurrentRunnerConfig Small() {
    ConcurrentRunnerConfig cfg;
    cfg.thread_counts = {1, 3};
    cfg.rates = {-1.0};
    cfg.period_s = 0.5;
    cfg.subset_count = 2;
    return cfg;
  }
};

class ConcurrentRunner {
 public:
  /// `templates` maps query name -> finalized plan (borrowed).
  ConcurrentRunner(Database *db,
                   std::map<std::string, const PlanNode *> templates)
      : db_(db), templates_(std::move(templates)) {}

  /// Runs all combinations with metrics enabled; returns the drained
  /// records (timestamps + thread ids intact for window bucketing).
  std::vector<OuRecord> Run(const ConcurrentRunnerConfig &config);

  double runner_seconds() const { return runner_seconds_; }

 private:
  Database *db_;
  std::map<std::string, const PlanNode *> templates_;
  double runner_seconds_ = 0.0;
};

}  // namespace mb2
