#include "runner/data_repository.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <map>
#include <mutex>

#include "common/csv.h"
#include "common/thread_pool.h"

namespace mb2 {

namespace {

Status WriteOuFile(const std::string &path, OuType type,
                   const std::vector<const OuRecord *> &group) {
  const OuDescriptor &desc = GetOuDescriptor(type);
  std::vector<std::string> header = desc.feature_names;
  for (size_t j = 0; j < kNumLabels; j++) header.push_back(LabelName(j));
  header.push_back("thread_id");
  header.push_back("end_time_us");
  auto writer = CsvWriter::Open(path, header);
  if (!writer.ok()) return writer.status();
  for (const OuRecord *r : group) {
    std::vector<double> row = r->features;
    row.resize(desc.feature_names.size(), 0.0);
    for (size_t j = 0; j < kNumLabels; j++) row.push_back(r->labels[j]);
    row.push_back(static_cast<double>(r->thread_id));
    row.push_back(static_cast<double>(r->end_time_us));
    writer.value().WriteRow(row);
  }
  return Status::Ok();
}

}  // namespace

std::string DataRepository::FilePath(OuType type) const {
  return dir_ + "/" + OuTypeName(type) + ".csv";
}

Status DataRepository::Save(const std::vector<OuRecord> &records,
                            ThreadPool *pool) const {
  ::mkdir(dir_.c_str(), 0755);
  std::map<OuType, std::vector<const OuRecord *>> grouped;
  for (const auto &r : records) grouped[r.ou].push_back(&r);

  if (pool == nullptr) {
    for (const auto &[type, group] : grouped) {
      Status status = WriteOuFile(FilePath(type), type, group);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  std::mutex status_mutex;
  Status first_error = Status::Ok();
  for (const auto &[type, group] : grouped) {
    pool->Submit([this, type = type, &group, &status_mutex, &first_error] {
      Status status = WriteOuFile(FilePath(type), type, group);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(status_mutex);
        if (first_error.ok()) first_error = std::move(status);
      }
    });
  }
  pool->WaitAll();
  return first_error;
}

Result<std::vector<OuRecord>> DataRepository::LoadAll() const {
  std::vector<OuRecord> out;
  for (size_t t = 0; t < kNumOuTypes; t++) {
    const OuType type = static_cast<OuType>(t);
    const std::string path = FilePath(type);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) continue;
    auto data = ReadCsvMatrix(path);
    if (!data.ok()) return data.status();
    const Matrix &values = data.value().values;
    const size_t width = values.cols();
    const size_t n_features = GetOuDescriptor(type).feature_names.size();
    if (width < n_features + kNumLabels) continue;
    const bool has_meta = width >= n_features + kNumLabels + 2;
    out.reserve(out.size() + values.rows());
    for (size_t r = 0; r < values.rows(); r++) {
      const double *row = values.RowPtr(r);
      OuRecord record;
      record.ou = type;
      record.features.assign(row, row + n_features);
      for (size_t j = 0; j < kNumLabels; j++) {
        record.labels[j] = row[n_features + j];
      }
      if (has_meta) {
        record.thread_id = static_cast<uint64_t>(row[n_features + kNumLabels]);
        record.end_time_us =
            static_cast<int64_t>(row[n_features + kNumLabels + 1]);
      }
      out.push_back(std::move(record));
    }
  }
  return out;
}

uint64_t DataRepository::TotalBytes() const {
  uint64_t total = 0;
  for (size_t t = 0; t < kNumOuTypes; t++) {
    struct stat st;
    if (::stat(FilePath(static_cast<OuType>(t)).c_str(), &st) == 0) {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  return total;
}

}  // namespace mb2
