#include "runner/concurrent_runner.h"

#include <chrono>

#include "common/rng.h"
#include "workload/workload_driver.h"

namespace mb2 {

std::vector<OuRecord> ConcurrentRunner::Run(const ConcurrentRunnerConfig &config) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<OuRecord> out;
  auto &metrics = MetricsManager::Instance();

  std::vector<const PlanNode *> all_plans;
  for (const auto &[name, plan] : templates_) all_plans.push_back(plan);
  if (all_plans.empty()) return out;

  Rng subset_rng(4242);
  for (uint32_t s = 0; s < config.subset_count; s++) {
    // Random non-empty subset of the query templates.
    std::vector<const PlanNode *> subset;
    for (const PlanNode *plan : all_plans) {
      if (subset_rng.NextDouble() < 0.6) subset.push_back(plan);
    }
    if (subset.empty()) subset.push_back(all_plans[s % all_plans.size()]);

    for (uint32_t threads : config.thread_counts) {
      for (double rate : config.rates) {
        metrics.DrainAll();
        metrics.SetEnabled(true);
        DriverOptions driver_opts;
        driver_opts.max_txn_retries = config.txn_retries;
        WorkloadDriver::Run(
            [&](Rng *rng) -> double {
              const PlanNode *plan =
                  subset[rng->Next() % subset.size()];
              QueryResult result = db_->Execute(*plan);
              return result.aborted ? -1.0 : result.elapsed_us;
            },
            threads, rate, config.period_s, /*seed=*/threads * 131 + s,
            driver_opts);
        metrics.SetEnabled(false);
        auto drained = metrics.DrainAll();
        out.insert(out.end(), std::make_move_iterator(drained.begin()),
                   std::make_move_iterator(drained.end()));
      }
    }
  }
  runner_seconds_ += std::chrono::duration_cast<std::chrono::duration<double>>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return out;
}

}  // namespace mb2
