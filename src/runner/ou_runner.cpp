#include "runner/ou_runner.h"

#include <chrono>
#include <thread>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "index/index_builder.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/table_heap.h"
#include "wal/log_record.h"

namespace mb2 {

namespace {

constexpr uint32_t kSynthPayloadCols = 7;  // plus the unique `id` column

class Stopwatch {
 public:
  explicit Stopwatch(double *accumulator) : accumulator_(accumulator) {
    start_ = std::chrono::steady_clock::now();
  }
  ~Stopwatch() {
    *accumulator_ += std::chrono::duration_cast<std::chrono::duration<double>>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  }

 private:
  double *accumulator_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Table *MakeSyntheticTable(Database *db, const std::string &name, uint64_t rows,
                          uint64_t distinct, uint64_t seed,
                          TableStorage storage) {
  std::vector<Column> cols;
  cols.push_back({"id", TypeId::kInteger, 0});
  for (uint32_t c = 0; c < kSynthPayloadCols; c++) {
    cols.push_back({"c" + std::to_string(c), TypeId::kInteger, 0});
  }
  Table *table = db->catalog().CreateTable(name, Schema(std::move(cols)), storage);
  MB2_ASSERT(table != nullptr, "synthetic table name collision");

  Rng rng(seed);
  auto txn = db->txn_manager().Begin();
  for (uint64_t i = 0; i < rows; i++) {
    Tuple row;
    row.reserve(1 + kSynthPayloadCols);
    row.push_back(Value::Integer(static_cast<int64_t>(i)));
    for (uint32_t c = 0; c < kSynthPayloadCols; c++) {
      row.push_back(Value::Integer(
          rng.Uniform(0, static_cast<int64_t>(std::max<uint64_t>(1, distinct)) - 1)));
    }
    table->Insert(txn.get(), std::move(row));
  }
  db->txn_manager().Commit(txn.get());
  return table;
}

Table *OuRunner::SyntheticTable(uint64_t rows, double cardinality_fraction) {
  const int card_key = static_cast<int>(cardinality_fraction * 1000.0);
  const auto key = std::make_pair(rows, card_key);
  auto it = table_cache_.find(key);
  if (it != table_cache_.end()) return db_->catalog().GetTable(it->second);

  const std::string name = "ou_synth_" + std::to_string(next_table_id_++);
  const uint64_t distinct = std::max<uint64_t>(
      1, static_cast<uint64_t>(cardinality_fraction * static_cast<double>(rows)));
  Table *table = MakeSyntheticTable(db_, name, rows, distinct,
                                    /*seed=*/rows * 31 + card_key);
  table_cache_[key] = name;
  db_->estimator().RefreshStats();
  return table;
}

std::vector<OuRecord> OuRunner::AggregateReps(
    const std::vector<std::vector<OuRecord>> &reps) const {
  std::vector<OuRecord> out;
  if (reps.empty()) return out;
  // Repetitions of the same single-threaded plan produce aligned record
  // streams; fall back to raw concatenation if alignment breaks.
  const size_t n = reps[0].size();
  for (const auto &rep : reps) {
    if (rep.size() != n) {
      for (const auto &r : reps) out.insert(out.end(), r.begin(), r.end());
      return out;
    }
  }
  for (size_t i = 0; i < n; i++) {
    OuRecord aggregated = reps[0][i];
    for (size_t j = 0; j < kNumLabels; j++) {
      std::vector<double> samples;
      samples.reserve(reps.size());
      for (const auto &rep : reps) {
        if (rep[i].ou != aggregated.ou) return out;  // misaligned; bail
        samples.push_back(rep[i].labels[j]);
      }
      aggregated.labels[j] = TrimmedMean(std::move(samples), config_.trim_fraction);
    }
    out.push_back(std::move(aggregated));
  }
  return out;
}

void OuRunner::EnableCollection() {
  auto &metrics = MetricsManager::Instance();
  if (config_.thread_scoped_metrics) {
    metrics.BeginThreadCollection();
  } else {
    metrics.SetEnabled(true);
  }
}

void OuRunner::DisableCollection() {
  auto &metrics = MetricsManager::Instance();
  if (config_.thread_scoped_metrics) {
    metrics.EndThreadCollection();
  } else {
    metrics.SetEnabled(false);
  }
}

std::vector<OuRecord> OuRunner::DrainCollection() {
  auto &metrics = MetricsManager::Instance();
  return config_.thread_scoped_metrics ? metrics.DrainThread()
                                       : metrics.DrainAll();
}

void OuRunner::MeasurePlan(const PlanNode &plan, std::vector<OuRecord> *out) {
  Stopwatch watch(&runner_seconds_);
  DisableCollection();
  for (uint32_t w = 0; w < config_.warmups; w++) db_->Execute(plan);
  DrainCollection();  // discard anything stale
  std::vector<std::vector<OuRecord>> reps;
  for (uint32_t r = 0; r < config_.repetitions; r++) {
    EnableCollection();
    db_->Execute(plan);
    DisableCollection();
    reps.push_back(DrainCollection());
  }
  auto aggregated = AggregateReps(reps);
  out->insert(out->end(), aggregated.begin(), aggregated.end());
}

void OuRunner::MeasurePlanWithRollback(const PlanNode &plan,
                                       std::vector<OuRecord> *out) {
  Stopwatch watch(&runner_seconds_);
  DisableCollection();
  DrainCollection();
  std::vector<std::vector<OuRecord>> reps;
  for (uint32_t r = 0; r < config_.repetitions + config_.warmups; r++) {
    const bool measured = r >= config_.warmups;
    if (measured) EnableCollection();
    auto txn = db_->txn_manager().Begin();
    Batch result;
    db_->engine().ExecuteInTxn(plan, txn.get(), &result);
    db_->txn_manager().Abort(txn.get());  // revert the modification
    DisableCollection();
    if (measured) {
      reps.push_back(DrainCollection());
    } else {
      DrainCollection();
    }
  }
  auto aggregated = AggregateReps(reps);
  out->insert(out->end(), aggregated.begin(), aggregated.end());
}

// ---------------------------------------------------------------------------
// Execution-engine runners
// ---------------------------------------------------------------------------

std::vector<OuRecord> OuRunner::RunScanAndFilter() {
  std::vector<OuRecord> out;
  for (uint64_t rows : config_.row_counts) {
    for (double card : config_.cardinality_fractions) {
      Table *table = SyntheticTable(rows, card);
      for (uint32_t ncols : config_.column_counts) {
        for (int mode : config_.exec_modes) {
          db_->settings().SetInt("execution_mode", mode);
          std::vector<uint32_t> columns;
          for (uint32_t c = 0; c < ncols; c++) columns.push_back(c);
          // Two selectivities exercise the filter OU's row feature.
          for (double sel : {0.1, 0.9}) {
            auto scan = std::make_unique<SeqScanPlan>();
            scan->table = table->name();
            scan->columns = columns;
            scan->predicate =
                Cmp(CmpOp::kLt, ColRef(0),
                    ConstInt(static_cast<int64_t>(sel * static_cast<double>(rows))));
            auto plan = FinalizePlan(std::move(scan), db_->catalog());
            MeasurePlan(*plan, &out);
          }
        }
      }
    }
  }
  db_->settings().SetInt("execution_mode", 0);
  return out;
}

std::vector<OuRecord> OuRunner::RunJoins() {
  std::vector<OuRecord> out;
  for (uint64_t rows : config_.row_counts) {
    for (double card : config_.cardinality_fractions) {
      Table *table = SyntheticTable(rows, card);
      for (int mode : config_.exec_modes) {
        db_->settings().SetInt("execution_mode", mode);
        // 1:1 self-join on the unique id, varying the build-side size AND
        // the build-tuple width (the payload-size feature: wide build rows
        // cost proportionally more to copy into the hash table).
        for (double build_frac : {0.125, 1.0}) {
          for (uint32_t ncols : config_.column_counts) {
            const int64_t limit =
                static_cast<int64_t>(build_frac * static_cast<double>(rows));
            std::vector<uint32_t> columns;
            for (uint32_t c = 0; c < ncols; c++) columns.push_back(c);
            auto build = std::make_unique<SeqScanPlan>();
            build->table = table->name();
            build->columns = columns;
            build->predicate = Cmp(CmpOp::kLt, ColRef(0), ConstInt(limit));
            auto probe = std::make_unique<SeqScanPlan>();
            probe->table = table->name();
            probe->columns = columns;
            auto join = std::make_unique<HashJoinPlan>();
            join->build_keys = {0};
            join->probe_keys = {0};
            join->children.push_back(std::move(build));
            join->children.push_back(std::move(probe));
            auto plan = FinalizePlan(std::move(join), db_->catalog());
            MeasurePlan(*plan, &out);
          }
        }
        // Low-cardinality join: only on small tables (output is n^2/d).
        if (rows <= 4096) {
          auto build = std::make_unique<SeqScanPlan>();
          build->table = table->name();
          build->columns = {1, 2};
          auto probe = std::make_unique<SeqScanPlan>();
          probe->table = table->name();
          probe->columns = {1, 3};
          auto join = std::make_unique<HashJoinPlan>();
          join->build_keys = {0};
          join->probe_keys = {0};
          join->children.push_back(std::move(build));
          join->children.push_back(std::move(probe));
          auto plan = FinalizePlan(std::move(join), db_->catalog());
          MeasurePlan(*plan, &out);
        }
      }
    }
  }
  db_->settings().SetInt("execution_mode", 0);
  return out;
}

std::vector<OuRecord> OuRunner::RunAggregates() {
  std::vector<OuRecord> out;
  for (uint64_t rows : config_.row_counts) {
    for (double card : config_.cardinality_fractions) {
      Table *table = SyntheticTable(rows, card);
      for (int mode : config_.exec_modes) {
        db_->settings().SetInt("execution_mode", mode);
        // Sweep group-key width and aggregate-term count: they drive the
        // payload-size feature and the per-tuple accumulate cost.
        for (uint32_t group_cols : {1u, 2u}) {
          for (uint32_t terms : {1u, 3u}) {
            auto scan = std::make_unique<SeqScanPlan>();
            scan->table = table->name();
            scan->columns = {1, 2, 3, 4};
            auto agg = std::make_unique<AggregatePlan>();
            for (uint32_t g = 0; g < group_cols; g++) agg->group_by.push_back(g);
            agg->terms.push_back({AggFunc::kCount, nullptr});
            for (uint32_t a = 1; a < terms; a++) {
              agg->terms.push_back(
                  {a % 2 == 0 ? AggFunc::kSum : AggFunc::kAvg, ColRef(2 + a % 2)});
            }
            agg->children.push_back(std::move(scan));
            auto plan = FinalizePlan(std::move(agg), db_->catalog());
            MeasurePlan(*plan, &out);
          }
        }
      }
    }
  }
  db_->settings().SetInt("execution_mode", 0);
  return out;
}

std::vector<OuRecord> OuRunner::RunSorts() {
  std::vector<OuRecord> out;
  for (uint64_t rows : config_.row_counts) {
    for (double card : config_.cardinality_fractions) {
      Table *table = SyntheticTable(rows, card);
      for (uint32_t ncols : config_.column_counts) {
        for (int mode : config_.exec_modes) {
          db_->settings().SetInt("execution_mode", mode);
          std::vector<uint32_t> columns;
          for (uint32_t c = 0; c < ncols; c++) columns.push_back(c);
          auto scan = std::make_unique<SeqScanPlan>();
          scan->table = table->name();
          scan->columns = columns;
          auto sort = std::make_unique<SortPlan>();
          sort->sort_keys = {1};  // non-unique key (cardinality matters)
          sort->descending = {false};
          sort->children.push_back(std::move(scan));
          auto plan = FinalizePlan(std::move(sort), db_->catalog());
          MeasurePlan(*plan, &out);
        }
      }
    }
  }
  db_->settings().SetInt("execution_mode", 0);
  return out;
}

std::vector<OuRecord> OuRunner::RunProjections() {
  std::vector<OuRecord> out;
  for (uint64_t rows : config_.row_counts) {
    Table *table = SyntheticTable(rows, 1.0);
    for (int mode : config_.exec_modes) {
      db_->settings().SetInt("execution_mode", mode);
      // Sweep expression complexity (op count).
      for (int depth : {1, 4, 16}) {
        auto scan = std::make_unique<SeqScanPlan>();
        scan->table = table->name();
        scan->columns = {1, 2};
        auto proj = std::make_unique<ProjectionPlan>();
        ExprPtr expr = ColRef(0);
        for (int i = 0; i < depth; i++) {
          expr = Arith(i % 2 == 0 ? ArithOp::kAdd : ArithOp::kMul,
                       std::move(expr), ColRef(1));
        }
        proj->exprs.push_back(std::move(expr));
        proj->children.push_back(std::move(scan));
        auto plan = FinalizePlan(std::move(proj), db_->catalog());
        MeasurePlan(*plan, &out);
      }
    }
  }
  db_->settings().SetInt("execution_mode", 0);
  return out;
}

std::vector<OuRecord> OuRunner::RunDml() {
  std::vector<OuRecord> out;
  // A scratch table absorbs the DML; every measured query is rolled back.
  Table *scratch = SyntheticTable(
      config_.row_counts.empty() ? 4096 : config_.row_counts.back(), 1.0);

  for (uint64_t batch : config_.row_counts) {
    if (batch > 32768) continue;  // bound DML batch sizes
    // INSERT: literal rows.
    Rng rng(batch * 17);
    auto insert = std::make_unique<InsertPlan>();
    insert->table = scratch->name();
    for (uint64_t i = 0; i < batch; i++) {
      Tuple row;
      row.push_back(Value::Integer(static_cast<int64_t>(1000000 + i)));
      for (uint32_t c = 0; c < kSynthPayloadCols; c++) {
        row.push_back(Value::Integer(rng.Uniform(int64_t{0}, int64_t{1} << 20)));
      }
      insert->rows.push_back(std::move(row));
    }
    auto insert_plan = FinalizePlan(std::move(insert), db_->catalog());
    MeasurePlanWithRollback(*insert_plan, &out);

    // UPDATE: range of ids.
    auto scan = std::make_unique<SeqScanPlan>();
    scan->table = scratch->name();
    scan->with_slots = true;
    scan->predicate =
        Cmp(CmpOp::kLt, ColRef(0), ConstInt(static_cast<int64_t>(batch)));
    auto update = std::make_unique<UpdatePlan>();
    update->table = scratch->name();
    update->sets.emplace_back(1, Arith(ArithOp::kAdd, ColRef(1), ConstInt(1)));
    update->children.push_back(std::move(scan));
    auto update_plan = FinalizePlan(std::move(update), db_->catalog());
    MeasurePlanWithRollback(*update_plan, &out);

    // DELETE: same range.
    auto dscan = std::make_unique<SeqScanPlan>();
    dscan->table = scratch->name();
    dscan->with_slots = true;
    dscan->predicate =
        Cmp(CmpOp::kLt, ColRef(0), ConstInt(static_cast<int64_t>(batch)));
    auto del = std::make_unique<DeletePlan>();
    del->table = scratch->name();
    del->children.push_back(std::move(dscan));
    auto delete_plan = FinalizePlan(std::move(del), db_->catalog());
    MeasurePlanWithRollback(*delete_plan, &out);
  }
  return out;
}

std::vector<OuRecord> OuRunner::RunIndexScans() {
  std::vector<OuRecord> out;
  for (uint64_t rows : config_.row_counts) {
    Table *table = SyntheticTable(rows, 1.0);
    const std::string index_name = "ou_idx_" + std::to_string(next_table_id_++);
    auto index = db_->catalog().CreateIndex(
        IndexSchema{index_name, table->name(), {0}, true});
    MB2_ASSERT(index.ok(), "index creation failed");
    IndexBuilder::Build(&db_->catalog(), &db_->txn_manager(), index.value(), 1);

    for (int mode : config_.exec_modes) {
      db_->settings().SetInt("execution_mode", mode);
      // Point lookups and ranges of growing width.
      for (uint64_t width : {uint64_t{1}, uint64_t{16}, uint64_t{256}}) {
        if (width > rows) continue;
        auto scan = std::make_unique<IndexScanPlan>();
        scan->index = index_name;
        scan->table = table->name();
        scan->key_lo = {Value::Integer(0)};
        if (width > 1) {
          scan->key_hi = {Value::Integer(static_cast<int64_t>(width) - 1)};
        }
        auto plan = FinalizePlan(std::move(scan), db_->catalog());
        MeasurePlan(*plan, &out);
      }
    }
    db_->catalog().DropIndex(index_name);
  }
  db_->settings().SetInt("execution_mode", 0);
  return out;
}

std::vector<OuRecord> OuRunner::RunIndexBuilds() {
  std::vector<OuRecord> out;
  Stopwatch watch(&runner_seconds_);
  for (uint64_t rows : config_.row_counts) {
    if (rows < 512) continue;  // too small to contend meaningfully
    for (double card : config_.cardinality_fractions) {
      SyntheticTable(rows, card);
      for (uint32_t threads : config_.index_build_threads) {
        for (const std::vector<uint32_t> &key_cols :
             {std::vector<uint32_t>{1}, std::vector<uint32_t>{1, 2}}) {
          Table *table = SyntheticTable(rows, card);
          const std::string name = "ou_build_" + std::to_string(next_table_id_++);
          auto index = db_->catalog().CreateIndex(
              IndexSchema{name, table->name(), key_cols, false});
          MB2_ASSERT(index.ok(), "index creation failed");
          DrainCollection();
          // The kIndexBuild record is emitted on the calling thread (the
          // builder's workers only run trackers), so thread-scoped
          // collection works here.
          EnableCollection();
          IndexBuilder::Build(&db_->catalog(), &db_->txn_manager(),
                              index.value(), threads);
          DisableCollection();
          for (auto &r : DrainCollection()) {
            if (r.ou == OuType::kIndexBuild) out.push_back(std::move(r));
          }
          db_->catalog().DropIndex(name);
        }
      }
    }
  }
  return out;
}

std::vector<OuRecord> OuRunner::RunWal() {
  std::vector<OuRecord> out;
  if (!db_->log_manager().enabled()) return out;
  Stopwatch watch(&runner_seconds_);
  Rng rng(99);
  for (uint64_t records : {uint64_t{16}, uint64_t{128}, uint64_t{1024},
                           uint64_t{8192}}) {
    for (uint32_t value_count : {2u, 8u, 24u}) {
      for (double interval : {1000.0, 10000.0, 100000.0}) {
        db_->settings().SetDouble("log_flush_interval_us", interval);
        std::vector<RedoRecord> redo;
        redo.reserve(records);
        for (uint64_t i = 0; i < records; i++) {
          RedoRecord r;
          r.op = LogOpType::kUpdate;
          r.table_id = 1;
          r.slot = i;
          for (uint32_t v = 0; v < value_count; v++) {
            r.after.push_back(Value::Integer(rng.Uniform(int64_t{0}, int64_t{1} << 30)));
          }
          redo.push_back(std::move(r));
        }
        for (uint32_t rep = 0; rep < config_.repetitions; rep++) {
          DrainCollection();
          EnableCollection();
          db_->log_manager().Serialize(redo, /*txn_id=*/rep);
          db_->log_manager().FlushNow();
          DisableCollection();
          for (auto &r : DrainCollection()) {
            if (r.ou == OuType::kLogSerialize || r.ou == OuType::kLogFlush) {
              out.push_back(std::move(r));
            }
          }
        }
      }
    }
  }
  db_->settings().SetDouble("log_flush_interval_us", 10000.0);
  return out;
}

std::vector<OuRecord> OuRunner::RunGc() {
  std::vector<OuRecord> out;
  Stopwatch watch(&runner_seconds_);
  for (uint64_t rows : config_.row_counts) {
    if (rows < 512 || rows > 65536) continue;
    for (uint32_t churn : {1u, 3u}) {
      const std::string name = "ou_gc_" + std::to_string(next_table_id_++);
      Table *table = MakeSyntheticTable(db_, name, rows, rows, rows * 7);
      // Create garbage: update every row `churn` times.
      for (uint32_t k = 0; k < churn; k++) {
        auto txn = db_->txn_manager().Begin();
        Tuple row;
        for (SlotId slot = 0; slot < table->NumSlots(); slot++) {
          if (!table->Select(txn.get(), slot, &row)) continue;
          row[1] = Value::Integer(row[1].AsInt() + 1);
          table->Update(txn.get(), slot, row);
        }
        db_->txn_manager().Commit(txn.get());
      }
      DrainCollection();
      EnableCollection();
      db_->gc().RunOnce();
      DisableCollection();
      for (auto &r : DrainCollection()) {
        if (r.ou == OuType::kGarbageCollection) out.push_back(std::move(r));
      }
    }
  }
  return out;
}

std::vector<OuRecord> OuRunner::RunStorage() {
  std::vector<OuRecord> out;
  Stopwatch watch(&runner_seconds_);
  const int64_t saved_pool = db_->settings().GetInt("buffer_pool_pages");

  for (uint64_t rows : config_.row_counts) {
    if (rows < 64 || rows > 32768) continue;  // bound disk-table sizes
    // Sweep the pool so the models see the full hit-ratio range: a pool the
    // table thrashes (every page misses), a partial fit, and a full fit.
    for (int64_t pool_pages : {int64_t{8}, int64_t{64}, int64_t{512}}) {
      db_->settings().SetInt("buffer_pool_pages", pool_pages);
      const std::string name = "ou_disk_" + std::to_string(next_table_id_++);
      Table *table = MakeSyntheticTable(db_, name, rows, rows,
                                        /*seed=*/rows * 13 + pool_pages,
                                        TableStorage::kDisk);
      BufferPool *pool = table->heap()->pool();
      db_->estimator().RefreshStats();

      auto make_scan = [&] {
        auto scan = std::make_unique<SeqScanPlan>();
        scan->table = table->name();
        for (uint32_t c = 0; c < 1 + kSynthPayloadCols; c++) {
          scan->columns.push_back(c);
        }
        return FinalizePlan(std::move(scan), db_->catalog());
      };
      auto plan = make_scan();

      // PAGE_READ: the scan's staging phase records it (ExecSeqScanDisk)
      // with the actual miss count as a feature. Cold reps drop the cache
      // first (every page misses); hot reps rescan a warmed cache.
      for (bool cold : {true, false}) {
        if (!cold) db_->Execute(*plan);  // warm
        for (uint32_t rep = 0; rep < config_.repetitions; rep++) {
          if (cold) pool->DropAll();
          DrainCollection();
          EnableCollection();
          db_->Execute(*plan);
          DisableCollection();
          for (auto &r : DrainCollection()) {
            if (r.ou == OuType::kPageRead) out.push_back(std::move(r));
          }
        }
      }

      // PAGE_WRITE: dirty a fresh batch of pages with inserts, then flush
      // them under a tracker scope. The flushed-page count is only known
      // afterwards (evicted pages were already written back), so the
      // features are finalized post-hoc like training-time cardinality.
      Rng rng(rows * 7 + static_cast<uint64_t>(pool_pages));
      const uint64_t batch = std::max<uint64_t>(64, rows / 8);
      for (uint32_t rep = 0; rep < config_.repetitions; rep++) {
        auto txn = db_->txn_manager().Begin();
        for (uint64_t i = 0; i < batch; i++) {
          Tuple row;
          row.reserve(1 + kSynthPayloadCols);
          row.push_back(Value::Integer(
              static_cast<int64_t>(1000000 + rep * batch + i)));
          for (uint32_t c = 0; c < kSynthPayloadCols; c++) {
            row.push_back(Value::Integer(rng.Uniform(int64_t{0}, int64_t{1} << 20)));
          }
          table->Insert(txn.get(), std::move(row));
        }
        db_->txn_manager().Commit(txn.get());
        DrainCollection();
        EnableCollection();
        {
          const uint64_t before = pool->stats().writebacks;
          OuTrackerScope scope(OuType::kPageWrite,
                               {0.0, 0.0, static_cast<double>(pool_pages)});
          pool->FlushAll();
          const double flushed =
              static_cast<double>(pool->stats().writebacks - before);
          scope.MutableFeatures()[0] = flushed;
          scope.MutableFeatures()[1] = flushed * kPageSize;
        }
        DisableCollection();
        for (auto &r : DrainCollection()) {
          if (r.ou == OuType::kPageWrite) out.push_back(std::move(r));
        }
      }

      // PAGE_EVICT: warm the cache with clean pages, then drop it — pure
      // frame-eviction cost with no writeback component (dirty-page
      // eviction is the PAGE_WRITE model's territory).
      for (uint32_t rep = 0; rep < config_.repetitions; rep++) {
        db_->Execute(*plan);  // warm (clean: everything was just flushed)
        pool->FlushAll();
        const double resident = static_cast<double>(pool->ResidentPages());
        DrainCollection();
        EnableCollection();
        {
          OuTrackerScope scope(OuType::kPageEvict,
                               {resident, static_cast<double>(pool_pages)});
          pool->DropAll();
        }
        DisableCollection();
        for (auto &r : DrainCollection()) {
          if (r.ou == OuType::kPageEvict) out.push_back(std::move(r));
        }
      }
    }
  }
  db_->settings().SetInt("buffer_pool_pages", saved_pool);
  return out;
}

std::vector<OuRecord> OuRunner::RunTxns() {
  std::vector<OuRecord> out;
  Stopwatch watch(&runner_seconds_);
  // Transaction workers record kTxnBegin/kTxnCommit from their own spawned
  // threads, which thread-scoped collection cannot see.
  MB2_ASSERT(!config_.thread_scoped_metrics,
             "RunTxns requires global metrics collection");
  auto &metrics = MetricsManager::Instance();
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (uint32_t pause_us : {0u, 50u, 500u}) {
      metrics.DrainAll();
      metrics.SetEnabled(true);
      std::vector<std::thread> workers;
      for (uint32_t t = 0; t < threads; t++) {
        workers.emplace_back([&] {
          for (uint32_t i = 0; i < 200; i++) {
            auto txn = db_->txn_manager().Begin();
            if (pause_us > 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(pause_us));
            }
            db_->txn_manager().Commit(txn.get());
          }
        });
      }
      for (auto &w : workers) w.join();
      metrics.SetEnabled(false);
      for (auto &r : metrics.DrainAll()) {
        if (r.ou == OuType::kTxnBegin || r.ou == OuType::kTxnCommit) {
          out.push_back(std::move(r));
        }
      }
    }
  }
  return out;
}

std::vector<OuRecord> OuRunner::RunAll() {
  std::vector<OuRecord> out;
  auto append = [&out](std::vector<OuRecord> records) {
    out.insert(out.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  };
  append(RunScanAndFilter());
  append(RunJoins());
  append(RunAggregates());
  append(RunSorts());
  append(RunProjections());
  append(RunDml());
  append(RunIndexScans());
  append(RunIndexBuilds());
  append(RunWal());
  append(RunGc());
  append(RunStorage());
  append(RunTxns());
  return out;
}

// ---------------------------------------------------------------------------
// Parallel sweep
// ---------------------------------------------------------------------------

SweepResult RunParallelSweep(const OuRunnerConfig &config, size_t jobs) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (jobs == 0) jobs = 1;

  // One sweep unit per OU category; each runs on its own Database so the
  // units share no engine state at all (catalog, settings, tables). Records
  // land in the worker's thread-local buffer only.
  using CategoryFn = std::vector<OuRecord> (OuRunner::*)();
  static constexpr CategoryFn kUnits[] = {
      &OuRunner::RunScanAndFilter, &OuRunner::RunJoins,
      &OuRunner::RunAggregates,    &OuRunner::RunSorts,
      &OuRunner::RunProjections,   &OuRunner::RunDml,
      &OuRunner::RunIndexScans,    &OuRunner::RunIndexBuilds,
      &OuRunner::RunWal,           &OuRunner::RunGc,
      &OuRunner::RunStorage,
  };
  constexpr size_t kNumUnits = sizeof(kUnits) / sizeof(kUnits[0]);

  std::vector<std::vector<OuRecord>> unit_records(kNumUnits);
  std::vector<double> unit_seconds(kNumUnits, 0.0);
  {
    ThreadPool pool(jobs);
    for (size_t i = 0; i < kNumUnits; i++) {
      pool.Submit([&, i] {
        Database db;
        OuRunnerConfig unit_config = config;
        unit_config.thread_scoped_metrics = true;
        OuRunner runner(&db, unit_config);
        MetricsManager::Instance().DrainThread();  // discard stale records
        unit_records[i] = (runner.*kUnits[i])();
        unit_seconds[i] = runner.runner_seconds();
      });
    }
    pool.WaitAll();
  }

  SweepResult result;
  for (size_t i = 0; i < kNumUnits; i++) {
    result.records.insert(result.records.end(),
                          std::make_move_iterator(unit_records[i].begin()),
                          std::make_move_iterator(unit_records[i].end()));
    result.runner_seconds += unit_seconds[i];
  }

  // The transaction runner spawns worker threads that record from their own
  // threads, so it needs the global toggle; run it after the pool drains.
  {
    Database db;
    OuRunner runner(&db, config);
    auto txn_records = runner.RunTxns();
    result.records.insert(result.records.end(),
                          std::make_move_iterator(txn_records.begin()),
                          std::make_move_iterator(txn_records.end()));
    result.runner_seconds += runner.runner_seconds();
  }

  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace mb2
