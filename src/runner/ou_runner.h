#pragma once

/// \file ou_runner.h
/// OU-runners (Sec 6.2): specialized microbenchmarks that sweep each OU's
/// input-feature space (rows, columns, cardinalities, knobs) with
/// exponential step sizes, executing real engine work under the metrics
/// collector. Each configuration runs warm-up iterations followed by
/// repeated measurements aggregated with the 20% trimmed mean (robust
/// statistics), and state-modifying queries are reverted with transaction
/// rollbacks — all per the paper. NoisePage drove its runners through SQL
/// (the paper's option 2); ours use the engine's plan API (option 1) for
/// exact control over the swept parameters — the SQL frontend in src/sql/
/// sits above the same plan layer, so both options exercise identical OUs.

#include <map>
#include <vector>

#include "database.h"
#include "metrics/metrics_collector.h"

namespace mb2 {

struct OuRunnerConfig {
  std::vector<uint64_t> row_counts = {64, 512, 4096, 32768, 131072};
  std::vector<double> cardinality_fractions = {0.02, 0.25, 1.0};
  std::vector<uint32_t> column_counts = {2, 4, 8};
  std::vector<int> exec_modes = {0, 1};
  std::vector<uint32_t> index_build_threads = {1, 2, 4, 8};
  uint32_t repetitions = 7;   ///< measured reps per config (trimmed mean)
  uint32_t warmups = 2;       ///< unmeasured warm-up executions
  double trim_fraction = 0.2;

  /// Parallel-sweep mode: collect records with thread-scoped metrics
  /// collection (this thread's buffer only) instead of the global toggle,
  /// so concurrent sweep units never observe each other's records. Only
  /// valid for runners whose OUs record on the runner's own thread — i.e.
  /// every category except RunTxns(), whose transaction workers record from
  /// their spawned threads.
  bool thread_scoped_metrics = false;

  /// Scaled-down preset for unit tests.
  static OuRunnerConfig Small() {
    OuRunnerConfig cfg;
    cfg.row_counts = {64, 512, 4096};
    cfg.cardinality_fractions = {0.1, 1.0};
    cfg.column_counts = {2, 4};
    // Keep the full thread sweep even in the small preset: contending-OU
    // models must interpolate, never extrapolate, over the thread range.
    cfg.index_build_threads = {1, 2, 4, 8};
    cfg.repetitions = 3;
    cfg.warmups = 1;
    return cfg;
  }
};

class OuRunner {
 public:
  OuRunner(Database *db, OuRunnerConfig config)
      : db_(db), config_(std::move(config)) {}
  MB2_DISALLOW_COPY_AND_MOVE(OuRunner);

  /// Runs every runner; returns trimmed-mean aggregated records.
  std::vector<OuRecord> RunAll();

  std::vector<OuRecord> RunScanAndFilter();
  std::vector<OuRecord> RunJoins();
  std::vector<OuRecord> RunAggregates();
  std::vector<OuRecord> RunSorts();
  std::vector<OuRecord> RunProjections();
  std::vector<OuRecord> RunDml();          // insert / update / delete
  std::vector<OuRecord> RunIndexScans();
  std::vector<OuRecord> RunIndexBuilds();
  std::vector<OuRecord> RunWal();
  std::vector<OuRecord> RunGc();
  std::vector<OuRecord> RunStorage();  // block I/O: page read/write/evict
  std::vector<OuRecord> RunTxns();

  /// Wall-clock seconds spent inside Run* calls so far (Table 2).
  double runner_seconds() const { return runner_seconds_; }

 private:
  /// Lazily creates (and caches) a synthetic table: `id` unique int plus 7
  /// int payload columns whose distinct count is fraction*rows.
  Table *SyntheticTable(uint64_t rows, double cardinality_fraction);

  /// Collection helpers honoring `config_.thread_scoped_metrics`.
  void EnableCollection();
  void DisableCollection();
  std::vector<OuRecord> DrainCollection();

  /// Executes `plan` with warmups then measured repetitions, aggregating the
  /// drained records with the trimmed mean. Appends to *out.
  void MeasurePlan(const PlanNode &plan, std::vector<OuRecord> *out);

  /// Same, but the query is executed and rolled back (DML runners).
  void MeasurePlanWithRollback(const PlanNode &plan, std::vector<OuRecord> *out);

  /// Trimmed-mean aggregation of repetition-aligned record streams.
  std::vector<OuRecord> AggregateReps(
      const std::vector<std::vector<OuRecord>> &reps) const;

  Database *db_;
  OuRunnerConfig config_;
  std::map<std::pair<uint64_t, int>, std::string> table_cache_;
  int next_table_id_ = 0;
  double runner_seconds_ = 0.0;
};

/// Populates a standalone synthetic table (exposed for tests/benches).
Table *MakeSyntheticTable(Database *db, const std::string &name, uint64_t rows,
                          uint64_t distinct, uint64_t seed,
                          TableStorage storage = TableStorage::kMemory);

/// Result of a (possibly parallel) full OU-runner sweep.
struct SweepResult {
  std::vector<OuRecord> records;
  double runner_seconds = 0.0;  ///< summed across units (Table 2 CPU cost)
  double wall_seconds = 0.0;    ///< elapsed wall clock of the whole sweep
};

/// Runs the full OU-runner battery with up to `jobs` sweep units in flight.
/// Each unit (one OU category) executes on its own Database instance with
/// thread-scoped metrics collection, so units are fully independent; the
/// transaction runner, whose workers record from spawned threads, runs after
/// the pool drains using the global collection toggle. Record grouping is
/// deterministic (fixed unit order) regardless of `jobs`.
SweepResult RunParallelSweep(const OuRunnerConfig &config, size_t jobs);

}  // namespace mb2
