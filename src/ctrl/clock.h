#pragma once

/// \file clock.h
/// Injectable clock for the autonomous controller. Production uses the
/// steady-clock-backed SystemClock; tests inject a FakeClock and drive the
/// decision loop tick by tick, so every controller test is deterministic —
/// no sleeps, no wall-clock races.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mb2::ctrl {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds (an arbitrary epoch; only differences matter).
  virtual int64_t NowUs() = 0;
  /// Sleeps up to `us`, returning early (true) when `wake` is signalled —
  /// the controller's Stop() path must not wait out a full interval.
  virtual bool SleepUs(int64_t us, std::condition_variable *wake,
                       std::mutex *mutex, const std::atomic<bool> *stop) = 0;
};

class SystemClock final : public Clock {
 public:
  int64_t NowUs() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  bool SleepUs(int64_t us, std::condition_variable *wake, std::mutex *mutex,
               const std::atomic<bool> *stop) override {
    std::unique_lock<std::mutex> lock(*mutex);
    return wake->wait_for(lock, std::chrono::microseconds(us), [stop] {
      return stop->load(std::memory_order_acquire);
    });
  }
};

/// Manually advanced clock. SleepUs never blocks: tests call Tick() on the
/// controller directly and Advance() between ticks.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_us = 0) : now_us_(start_us) {}
  int64_t NowUs() override { return now_us_.load(std::memory_order_acquire); }
  bool SleepUs(int64_t us, std::condition_variable *, std::mutex *,
               const std::atomic<bool> *stop) override {
    now_us_.fetch_add(us, std::memory_order_acq_rel);
    return stop != nullptr && stop->load(std::memory_order_acquire);
  }
  void Advance(int64_t us) { now_us_.fetch_add(us, std::memory_order_acq_rel); }

 private:
  std::atomic<int64_t> now_us_;
};

}  // namespace mb2::ctrl
