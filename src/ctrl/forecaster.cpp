#include "ctrl/forecaster.h"

#include <algorithm>

namespace mb2::ctrl {

void Forecaster::Ingest(const IntervalObservation &interval) {
  intervals_++;
  const double seconds = config_.interval_s > 0 ? config_.interval_s : 1.0;

  // Update templates that appeared this interval.
  for (const auto &[key, obs] : interval.templates) {
    TemplateState &state = templates_[key];
    if (state.sql.empty()) state.sql = obs.sql;
    const double rate = static_cast<double>(obs.count) / seconds;
    if (state.total_count == 0) {
      state.ewma = rate;  // seed with the first sample instead of decaying up
    } else {
      state.ewma = config_.alpha * rate + (1.0 - config_.alpha) * state.ewma;
    }
    state.history.push_back(rate);
    while (state.history.size() > std::max<size_t>(config_.history, 1)) {
      state.history.pop_front();
    }
    state.total_elapsed_us += obs.total_elapsed_us;
    state.total_count += obs.count;
    state.idle_intervals = 0;
  }

  // Decay templates that did not appear: a zero-rate sample keeps the EWMA
  // and seasonal history honest, and the idle counter eventually evicts them.
  for (auto it = templates_.begin(); it != templates_.end();) {
    TemplateState &state = it->second;
    if (interval.templates.count(it->first) == 0) {
      state.ewma = (1.0 - config_.alpha) * state.ewma;
      state.history.push_back(0.0);
      while (state.history.size() > std::max<size_t>(config_.history, 1)) {
        state.history.pop_front();
      }
      state.idle_intervals++;
      if (config_.evict_after_idle > 0 &&
          state.idle_intervals >= config_.evict_after_idle) {
        it = templates_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::map<std::string, TemplateForecast> Forecaster::Forecast(
    double min_rate_per_s) const {
  std::map<std::string, TemplateForecast> out;
  for (const auto &[key, state] : templates_) {
    double predicted = state.ewma;
    if (config_.season_length > 0 &&
        state.history.size() >= config_.season_length) {
      // Seasonal-naive: the rate one season ago predicts the next interval.
      const double seasonal =
          state.history[state.history.size() - config_.season_length];
      predicted = config_.seasonal_weight * seasonal +
                  (1.0 - config_.seasonal_weight) * predicted;
    }
    if (predicted < min_rate_per_s) continue;
    TemplateForecast forecast;
    forecast.sql = state.sql;
    forecast.rate_per_s = predicted;
    forecast.mean_latency_us =
        state.total_count == 0
            ? 0.0
            : state.total_elapsed_us / static_cast<double>(state.total_count);
    out.emplace(key, forecast);
  }
  return out;
}

}  // namespace mb2::ctrl
