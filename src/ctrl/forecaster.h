#pragma once

/// \file forecaster.h
/// Rolling per-interval workload forecast (the controller's stand-in for the
/// paper's assumed forecasting subsystem, Ma et al. SIGMOD'18). Each closed
/// interval contributes one arrival-rate sample per query template; the
/// forecast for the next interval is a hybrid of
///
///   * exponential smoothing  ewma_t = alpha * x_t + (1 - alpha) * ewma_{t-1}
///     (reactive: tracks level shifts within a few intervals), and
///   * seasonal-naive         x_{t + 1 - season_length}
///     (repeats the value from one season ago; captures periodic workloads
///     like the paper's day/night TPC-C/TPC-H alternation),
///
/// blended as  forecast = w * seasonal + (1 - w) * ewma  once a full season
/// of history exists, pure EWMA before that. Everything is driven by the
/// controller's injected clock — the forecaster itself never reads time, so
/// scripted interval feeds produce bit-identical forecasts in tests.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "ctrl/workload_stream.h"

namespace mb2::ctrl {

struct ForecastConfig {
  double interval_s = 1.0;      ///< forecast granularity (= controller tick)
  double alpha = 0.5;           ///< EWMA smoothing factor
  size_t season_length = 0;     ///< intervals per season; 0 disables seasonal
  double seasonal_weight = 0.5; ///< blend weight once a season of history exists
  size_t history = 64;          ///< per-template rate samples retained
  /// Templates idle for this many consecutive intervals are forgotten (their
  /// EWMA has decayed to noise; dropping them bounds memory under ad-hoc
  /// traffic).
  size_t evict_after_idle = 16;
};

/// Forecast state of one query template.
struct TemplateForecast {
  std::string sql;        ///< representative statement for re-planning
  double rate_per_s = 0;  ///< predicted arrivals/second next interval
  double mean_latency_us = 0;  ///< observed mean over retained history
};

class Forecaster {
 public:
  explicit Forecaster(ForecastConfig config) : config_(config) {}

  /// Feeds one closed interval's observations.
  void Ingest(const IntervalObservation &interval);

  /// Predicted per-template arrival rates for the next interval. Templates
  /// whose predicted rate rounds to < min_rate are omitted.
  std::map<std::string, TemplateForecast> Forecast(
      double min_rate_per_s = 1e-6) const;

  size_t intervals_ingested() const { return intervals_; }
  const ForecastConfig &config() const { return config_; }

 private:
  struct TemplateState {
    std::string sql;
    double ewma = 0.0;           ///< arrivals/second
    std::deque<double> history;  ///< recent per-interval rates
    double total_elapsed_us = 0.0;
    uint64_t total_count = 0;
    size_t idle_intervals = 0;
  };

  ForecastConfig config_;
  std::map<std::string, TemplateState> templates_;
  size_t intervals_ = 0;
};

}  // namespace mb2::ctrl
