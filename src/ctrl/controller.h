#pragma once

/// \file controller.h
/// The autonomous controller daemon — the component that closes MB2's
/// self-driving loop under live traffic (Sec 3's architecture diagram:
/// forecast -> behavior models -> planning -> deployment -> observation).
/// One decision cycle (Tick) does, in order:
///
///   1. drain the live WorkloadStream into the Forecaster (one interval of
///      per-template arrival rates and latencies);
///   2. verify the previously applied action: if the observed mean latency
///      regressed beyond `ctrl_rollback_tolerance_pct` of the pre-action
///      baseline, apply the action's stored Inverse (automatic rollback);
///   3. run the drift check (ModelBot::CheckDrift) and, when a retrain
///      provider is configured, retrain drifted OUs in place;
///   4. generate candidate actions for the forecasted workload, price them
///      all through the Planner (what-if + one batched model prediction per
///      evaluation), and apply the best candidate online — provided it
///      clears `ctrl_min_benefit_pct`, the global `ctrl_cooldown_ms`, and
///      the per-lever anti-flap bar (an action rolled back recently is not
///      retried immediately).
///
/// The loop runs on a background thread against an injected Clock;
/// deterministic tests construct it with a FakeClock and call Tick()
/// directly — same code path, no thread, no wall-clock.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ctrl/candidates.h"
#include "ctrl/clock.h"
#include "ctrl/forecaster.h"
#include "ctrl/workload_stream.h"
#include "modeling/model_bot.h"
#include "selfdriving/planner.h"

namespace mb2::ctrl {

struct ControllerConfig {
  ForecastConfig forecast;
  CandidateConfig candidates;
  /// Threads assumed to execute the forecasted workload (interference-model
  /// context for interval predictions).
  uint32_t workload_threads = 1;
  /// Run CheckDrift each tick (needs DriftMonitor sampling to matter).
  bool check_drift = true;
  /// When set, drifted OUs are retrained in place with records from this
  /// provider (e.g. a targeted OU-runner re-run). Unset = report only.
  std::function<std::vector<OuRecord>(OuType)> retrain_provider;
  std::vector<MlAlgorithm> retrain_algorithms = {MlAlgorithm::kLinear};
  /// Intervals to wait for post-action traffic before giving up on
  /// verification (an idle system yields nothing to judge).
  size_t verify_patience = 3;
  /// Queries an interval must carry before it can verify an action.
  uint64_t verify_min_queries = 1;
  /// How long a rolled-back lever stays barred from re-application.
  int64_t flap_bar_ms = 60000;
};

/// One controller decision, kept in a bounded log for CTRL_STATUS and the
/// autonomy bench's predicted-vs-actual report.
struct Decision {
  int64_t time_us = 0;        ///< clock time of the decision
  std::string action;         ///< Action::ToString()
  std::string kind;           ///< "apply" | "verified" | "rollback" | ...
  double predicted_baseline_us = 0;  ///< model: future latency, no action
  double predicted_benefit_us = 0;   ///< model: future latency, with action
  double observed_before_us = 0;     ///< measured mean latency pre-action
  double observed_after_us = 0;      ///< measured mean latency post-action
};

struct ControllerStatus {
  uint64_t ticks = 0;
  uint64_t actions_applied = 0;
  uint64_t actions_rolled_back = 0;
  uint64_t rollback_failures = 0;  ///< Inverse.Apply failed — needs operator
  uint64_t ous_retrained = 0;
  uint64_t templates_tracked = 0;
  uint64_t queries_observed = 0;
  int64_t last_action_us = 0;  ///< clock time of the last applied action
  bool pending_verification = false;
  std::vector<Decision> decisions;  ///< oldest first, bounded
};

class Controller {
 public:
  /// `clock` may be null (owns a SystemClock). `models` must outlive the
  /// controller and have trained OU models for pricing to be meaningful.
  Controller(Database *db, ModelBot *models,
             ControllerConfig config = ControllerConfig(),
             Clock *clock = nullptr);
  ~Controller();
  MB2_DISALLOW_COPY_AND_MOVE(Controller);

  /// The stream to attach to the SQL entry point (Database::set_workload
  /// _stream); the controller drains it once per tick.
  WorkloadStream &stream() { return stream_; }

  /// One decision cycle. Called by the background loop every
  /// `ctrl_interval_ms`; tests call it directly.
  void Tick();

  /// Starts/stops the background decision loop (idempotent).
  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  ControllerStatus GetStatus() const;

  static constexpr size_t kDecisionLogCapacity = 128;

 private:
  void RunLoop();
  /// Step 2: judge the pending action against this interval's observations.
  void VerifyPending(const IntervalObservation &interval, int64_t now_us);
  /// Step 4: candidate generation + pricing + guarded apply.
  void MaybeAct(const IntervalObservation &interval, int64_t now_us);
  /// Rebuilds the WorkloadForecast under the CURRENT engine state by
  /// re-planning each forecasted template's representative SQL (what-if
  /// scopes change what the parser picks, so this must re-run per scope).
  WorkloadForecast Replan();
  void LogDecision(Decision decision);

  Database *db_;
  ModelBot *models_;
  ControllerConfig config_;
  std::unique_ptr<Clock> owned_clock_;
  Clock *clock_;

  WorkloadStream stream_;
  Forecaster forecaster_;
  Planner planner_;

  /// Plans owned on behalf of the most recent Replan() result (forecast
  /// entries hold raw pointers).
  std::vector<PlanPtr> replan_plans_;
  std::map<std::string, TemplateForecast> last_forecast_;

  /// The applied-but-unverified action, with its pre-computed inverse.
  struct PendingVerification {
    Action applied;
    Action inverse;
    double observed_before_us = 0;
    double predicted_baseline_us = 0;
    double predicted_benefit_us = 0;
    size_t intervals_waited = 0;
  };
  std::optional<PendingVerification> pending_;

  /// Lever key -> clock time until which it may not be re-applied.
  std::map<std::string, int64_t> barred_until_us_;

  mutable std::mutex mutex_;  ///< guards status counters + decision log
  ControllerStatus status_;
  std::deque<Decision> decisions_;

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::condition_variable wake_;
  std::mutex wake_mutex_;
};

}  // namespace mb2::ctrl
