#pragma once

/// \file candidates.h
/// Candidate-action generation for the autonomous controller (the "search
/// space" half of Sec 8.7's planning loop; the Planner prices whatever this
/// proposes). Three families:
///
///   * CREATE INDEX: the forecasted templates are re-planned under the
///     current catalog; any sequential scan filtered by a comparison against
///     a column of a sufficiently large table, with no ready index keyed on
///     that column, yields a `ctrl_<table>_<col>` single-column candidate.
///   * DROP INDEX: controller-created (`ctrl_`-prefixed) indexes that no
///     forecasted template's plan uses any more become drop candidates —
///     the controller only un-does its own work, never operator DDL.
///   * knob flips: a bounded palette per tunable knob (execution mode,
///     GC/flush intervals, plan-cache capacity, net queue depth, buffer
///     pool size), skipping values equal to the current setting.
///
/// Generation is pure inspection — no catalog or settings mutation — so it
/// can run every tick.

#include <string>
#include <vector>

#include "selfdriving/action.h"

namespace mb2 {
class Database;
}

namespace mb2::ctrl {

struct TemplateForecast;

struct CandidateConfig {
  /// Tables smaller than this never get index candidates (a scan that fits
  /// in cache is cheaper than maintaining a tree).
  uint64_t min_table_rows = 1000;
  /// Parallelism for candidate index builds.
  uint32_t index_build_threads = 4;
  /// Enable each family independently (tests and the bench narrow the space).
  bool propose_indexes = true;
  bool propose_drops = true;
  bool propose_knobs = true;
};

/// Name a controller-owned index for (table, column).
std::string ControllerIndexName(const std::string &table,
                                const std::string &column);

/// Enumerate candidate actions for the forecasted workload. `forecast` maps
/// template key -> forecast (only `sql` is consulted here; rates matter to
/// the Planner, not to enumeration).
std::vector<Action> GenerateCandidates(
    Database *db,
    const std::vector<const TemplateForecast *> &forecast,
    const CandidateConfig &config = CandidateConfig());

}  // namespace mb2::ctrl
