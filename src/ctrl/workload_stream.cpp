#include "ctrl/workload_stream.h"

#include <algorithm>

namespace mb2::ctrl {

double IntervalObservation::LatencyPercentileUs(double p) const {
  if (latencies_us.empty()) return 0.0;
  std::vector<double> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void WorkloadStream::Observe(const std::string &template_key,
                             const std::string &sql, double elapsed_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  TemplateObservation &tmpl = current_.templates[template_key];
  if (tmpl.count == 0) tmpl.sql = sql;
  tmpl.count++;
  tmpl.total_elapsed_us += elapsed_us;
  current_.queries++;
  current_.total_elapsed_us += elapsed_us;
  if (current_.latencies_us.size() < kMaxLatencySamples) {
    current_.latencies_us.push_back(elapsed_us);
  } else if ((current_.queries & 1) == 0) {
    // Past the cap, keep a thinning sample: overwrite a rotating slot so the
    // retained set still spans the whole interval.
    current_.latencies_us[current_.queries % kMaxLatencySamples] = elapsed_us;
    current_.latency_samples_dropped++;
  } else {
    current_.latency_samples_dropped++;
  }
  total_observed_++;
}

IntervalObservation WorkloadStream::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  IntervalObservation out = std::move(current_);
  current_ = IntervalObservation{};
  return out;
}

uint64_t WorkloadStream::total_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_observed_;
}

}  // namespace mb2::ctrl
