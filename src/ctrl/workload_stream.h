#pragma once

/// \file workload_stream.h
/// Live workload ingestion for the autonomous controller. The SQL entry
/// point (sql::ExecuteSql) reports every successfully executed query/DML
/// statement here when a stream is attached to the Database: the statement's
/// normalized template key (the plan-cache normalization, so literal
/// variants collapse onto one template), a representative literal-bearing
/// SQL text (used to re-plan the template under hypothetical state), and the
/// statement's latency.
///
/// The stream itself is clock-free: it accumulates observations since the
/// last Drain(), and the controller's decision loop drains it once per
/// interval — so tests feed scripted observations and tick the loop with a
/// fake clock, deterministically.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace mb2::ctrl {

/// Per-template accumulation within one interval.
struct TemplateObservation {
  std::string sql;          ///< representative statement (first seen)
  uint64_t count = 0;       ///< executions this interval
  double total_elapsed_us = 0.0;
};

/// Everything observed since the previous Drain().
struct IntervalObservation {
  std::map<std::string, TemplateObservation> templates;  ///< by template key
  uint64_t queries = 0;
  double total_elapsed_us = 0.0;
  /// Per-query latencies (µs), capped at kMaxLatencySamples per interval so
  /// a traffic spike cannot grow memory; the cap keeps the newest samples'
  /// statistical shape by sampling every other query once full.
  std::vector<double> latencies_us;
  uint64_t latency_samples_dropped = 0;

  double MeanLatencyUs() const {
    return queries == 0 ? 0.0 : total_elapsed_us / static_cast<double>(queries);
  }
  /// p-th latency percentile of the retained samples (p in [0,1]).
  double LatencyPercentileUs(double p) const;
};

class WorkloadStream {
 public:
  WorkloadStream() = default;
  MB2_DISALLOW_COPY_AND_MOVE(WorkloadStream);

  static constexpr size_t kMaxLatencySamples = 65536;

  /// Reports one executed statement. Thread-safe; called from every serving
  /// thread, so the critical section is a few map operations.
  void Observe(const std::string &template_key, const std::string &sql,
               double elapsed_us);

  /// Moves out everything observed since the last drain.
  IntervalObservation Drain();

  uint64_t total_observed() const;

 private:
  mutable std::mutex mutex_;
  IntervalObservation current_;
  uint64_t total_observed_ = 0;
};

}  // namespace mb2::ctrl
