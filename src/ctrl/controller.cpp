#include "ctrl/controller.h"

#include <algorithm>
#include <iterator>

#include "obs/metrics_registry.h"
#include "sql/parser.h"

namespace mb2::ctrl {

Controller::Controller(Database *db, ModelBot *models, ControllerConfig config,
                       Clock *clock)
    : db_(db),
      models_(models),
      config_(std::move(config)),
      clock_(clock),
      forecaster_(config_.forecast),
      planner_(db, models) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  }
  db_->set_workload_stream(&stream_);
}

Controller::~Controller() {
  Stop();
  // Detach only if the hook still points at our stream (another controller
  // may have replaced it).
  if (db_->workload_stream() == &stream_) db_->set_workload_stream(nullptr);
}

void Controller::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { RunLoop(); });
}

void Controller::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  if (loop_.joinable()) loop_.join();
}

void Controller::RunLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Re-read the period each cycle: ctrl_interval_ms is hot-tunable (even
    // by the controller itself, in principle).
    const int64_t interval_us =
        db_->settings().GetInt("ctrl_interval_ms") * 1000;
    if (clock_->SleepUs(interval_us, &wake_, &wake_mutex_, &stop_)) break;
    if (stop_.load(std::memory_order_acquire)) break;
    Tick();
  }
}

WorkloadForecast Controller::Replan() {
  WorkloadForecast forecast;
  forecast.interval_s = config_.forecast.interval_s;
  forecast.num_threads = config_.workload_threads;
  replan_plans_.clear();
  for (const auto &[key, tmpl] : last_forecast_) {
    if (tmpl.sql.empty()) continue;
    auto bound = sql::Parse(db_, tmpl.sql);
    if (!bound.ok() || bound.value().plan == nullptr) continue;
    replan_plans_.push_back(std::move(bound.value().plan));
    ForecastEntry entry;
    entry.plan = replan_plans_.back().get();
    entry.arrival_rate = tmpl.rate_per_s;
    entry.label = key;
    forecast.entries.push_back(std::move(entry));
  }
  return forecast;
}

void Controller::Tick() {
  const int64_t now = clock_->NowUs();
  const IntervalObservation interval = stream_.Drain();
  forecaster_.Ingest(interval);
  last_forecast_ = forecaster_.Forecast();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    status_.ticks++;
    status_.templates_tracked = last_forecast_.size();
    status_.queries_observed += interval.queries;
  }

  VerifyPending(interval, now);

  if (config_.check_drift && models_ != nullptr) {
    const DriftReport report = models_->CheckDrift();
    if (!report.drifted.empty() && config_.retrain_provider) {
      const size_t retrained = models_->RetrainDrifted(
          report, config_.retrain_provider, config_.retrain_algorithms);
      if (retrained > 0) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          status_.ous_retrained += retrained;
        }
        Decision d;
        d.time_us = now;
        d.action = "retrain " + std::to_string(retrained) + " drifted OU(s)";
        d.kind = "retrain";
        LogDecision(std::move(d));
      }
    }
  }

  MaybeAct(interval, now);

  MetricsRegistry::Instance().GetCounter("mb2_ctrl_ticks_total").Add();
  MetricsRegistry::Instance()
      .GetGauge("mb2_ctrl_templates_tracked")
      .Set(static_cast<double>(last_forecast_.size()));
}

void Controller::VerifyPending(const IntervalObservation &interval,
                               int64_t now_us) {
  if (!pending_.has_value()) return;

  if (interval.queries < config_.verify_min_queries) {
    // No traffic to judge against; wait, but not forever.
    if (++pending_->intervals_waited >= config_.verify_patience) {
      Decision d;
      d.time_us = now_us;
      d.action = pending_->applied.ToString();
      d.kind = "verified-idle";
      d.predicted_baseline_us = pending_->predicted_baseline_us;
      d.predicted_benefit_us = pending_->predicted_benefit_us;
      d.observed_before_us = pending_->observed_before_us;
      LogDecision(std::move(d));
      pending_.reset();
      std::lock_guard<std::mutex> lock(mutex_);
      status_.pending_verification = false;
    }
    return;
  }

  const double before = pending_->observed_before_us;
  const double after = interval.MeanLatencyUs();
  const double tolerance_pct =
      db_->settings().GetDouble("ctrl_rollback_tolerance_pct");
  const bool regressed =
      before > 0.0 && after > before * (1.0 + tolerance_pct / 100.0);

  Decision d;
  d.time_us = now_us;
  d.action = pending_->applied.ToString();
  d.predicted_baseline_us = pending_->predicted_baseline_us;
  d.predicted_benefit_us = pending_->predicted_benefit_us;
  d.observed_before_us = before;
  d.observed_after_us = after;

  if (regressed) {
    const Status undo = pending_->inverse.Apply(db_, "controller");
    d.kind = undo.ok() ? "rollback" : "rollback-failed";
    // Anti-flap: the lever that just hurt us is barred for a while even if
    // the models still like it next tick.
    barred_until_us_[pending_->applied.Key()] =
        now_us + config_.flap_bar_ms * 1000;
    std::lock_guard<std::mutex> lock(mutex_);
    if (undo.ok()) {
      status_.actions_rolled_back++;
    } else {
      status_.rollback_failures++;
    }
    status_.pending_verification = false;
  } else {
    d.kind = "verified";
    std::lock_guard<std::mutex> lock(mutex_);
    status_.pending_verification = false;
  }
  LogDecision(std::move(d));
  pending_.reset();
}

void Controller::MaybeAct(const IntervalObservation &interval,
                          int64_t now_us) {
  if (pending_.has_value()) return;  // one action in flight at a time
  if (last_forecast_.empty()) return;

  // Global cooldown between applied actions.
  const int64_t cooldown_us = db_->settings().GetInt("ctrl_cooldown_ms") * 1000;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.last_action_us != 0 &&
        now_us - status_.last_action_us < cooldown_us) {
      return;
    }
  }

  std::vector<const TemplateForecast *> forecast;
  forecast.reserve(last_forecast_.size());
  for (const auto &[key, tmpl] : last_forecast_) forecast.push_back(&tmpl);

  std::vector<Action> candidates =
      GenerateCandidates(db_, forecast, config_.candidates);

  // Drop recently rolled-back levers; expire stale bars as we go.
  for (auto it = barred_until_us_.begin(); it != barred_until_us_.end();) {
    it = it->second <= now_us ? barred_until_us_.erase(it) : std::next(it);
  }
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [this](const Action &a) {
                       return barred_until_us_.count(a.Key()) > 0;
                     }),
      candidates.end());
  if (candidates.empty()) return;

  auto best = planner_.ChooseBest(candidates, [this] { return Replan(); });
  if (!best.has_value()) return;

  // Act only when the predicted improvement clears the configured fraction
  // of the predicted baseline — small wins are not worth perturbing a live
  // system for (and are within model noise anyway).
  const double min_benefit_pct =
      db_->settings().GetDouble("ctrl_min_benefit_pct");
  if (best->baseline_avg_latency_us <= 0.0 ||
      best->NetImprovementUs() <
          best->baseline_avg_latency_us * min_benefit_pct / 100.0) {
    return;
  }

  // Capture the inverse from the CURRENT state, then apply.
  auto inverse = best->action.Inverse(db_);
  if (!inverse.ok()) return;  // e.g. raced with a concurrent DDL

  const Status applied = best->action.Apply(db_, "controller");

  Decision d;
  d.time_us = now_us;
  d.action = best->action.ToString();
  d.kind = applied.ok() ? "apply" : "apply-failed";
  d.predicted_baseline_us = best->baseline_avg_latency_us;
  d.predicted_benefit_us = best->benefit_avg_latency_us;
  d.observed_before_us = interval.MeanLatencyUs();
  LogDecision(std::move(d));

  if (!applied.ok()) return;

  PendingVerification pending;
  pending.applied = best->action;
  pending.inverse = std::move(inverse.value());
  pending.observed_before_us = interval.MeanLatencyUs();
  pending.predicted_baseline_us = best->baseline_avg_latency_us;
  pending.predicted_benefit_us = best->benefit_avg_latency_us;
  pending_ = std::move(pending);

  std::lock_guard<std::mutex> lock(mutex_);
  status_.actions_applied++;
  status_.last_action_us = now_us;
  status_.pending_verification = true;
}

void Controller::LogDecision(Decision decision) {
  MetricsRegistry::Instance()
      .GetCounter("mb2_ctrl_decisions_total{kind=\"" + decision.kind + "\"}")
      .Add();
  std::lock_guard<std::mutex> lock(mutex_);
  if (decisions_.size() >= kDecisionLogCapacity) decisions_.pop_front();
  decisions_.push_back(std::move(decision));
}

ControllerStatus Controller::GetStatus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ControllerStatus out = status_;
  out.decisions.assign(decisions_.begin(), decisions_.end());
  return out;
}

}  // namespace mb2::ctrl
