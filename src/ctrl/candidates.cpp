#include "ctrl/candidates.h"

#include <set>

#include "ctrl/forecaster.h"
#include "database.h"
#include "sql/parser.h"

namespace mb2::ctrl {

namespace {

/// Column ordinals referenced by comparisons against constants, walking
/// through AND conjuncts. (OR branches are skipped: a single-column index
/// cannot serve a disjunction, so proposing one would never get picked.)
void CollectFilterColumns(const Expression *expr, std::set<uint32_t> *out) {
  if (expr == nullptr) return;
  if (expr->type == ExprType::kLogic && expr->logic_op == LogicOp::kAnd) {
    for (const auto &child : expr->children) {
      CollectFilterColumns(child.get(), out);
    }
    return;
  }
  if (expr->type != ExprType::kComparison || expr->children.size() != 2) return;
  const Expression *lhs = expr->children[0].get();
  const Expression *rhs = expr->children[1].get();
  if (lhs->type == ExprType::kColumnRef && rhs->type == ExprType::kConstant) {
    out->insert(lhs->col_idx);
  } else if (rhs->type == ExprType::kColumnRef &&
             lhs->type == ExprType::kConstant) {
    out->insert(rhs->col_idx);
  }
}

struct PlanFacts {
  /// (table, filter column ordinal) pairs behind sequential scans.
  std::set<std::pair<std::string, uint32_t>> scan_filters;
  /// Index names any plan actually scans.
  std::set<std::string> used_indexes;
};

void WalkPlan(const PlanNode *node, PlanFacts *facts) {
  if (node == nullptr) return;
  if (node->type == PlanNodeType::kSeqScan) {
    const auto *scan = node->As<SeqScanPlan>();
    std::set<uint32_t> cols;
    CollectFilterColumns(scan->predicate.get(), &cols);
    for (uint32_t col : cols) facts->scan_filters.emplace(scan->table, col);
  } else if (node->type == PlanNodeType::kIndexScan) {
    facts->used_indexes.insert(node->As<IndexScanPlan>()->index);
  }
  for (const auto &child : node->children) WalkPlan(child.get(), facts);
}

}  // namespace

std::string ControllerIndexName(const std::string &table,
                                const std::string &column) {
  return "ctrl_" + table + "_" + column;
}

std::vector<Action> GenerateCandidates(
    Database *db, const std::vector<const TemplateForecast *> &forecast,
    const CandidateConfig &config) {
  std::vector<Action> candidates;
  Catalog &catalog = db->catalog();

  // Re-plan every forecasted template under the current catalog state and
  // collect what the plans touch. Parse failures (e.g. a table dropped since
  // the template was observed) just exclude that template.
  PlanFacts facts;
  for (const TemplateForecast *tmpl : forecast) {
    if (tmpl == nullptr || tmpl->sql.empty()) continue;
    auto bound = sql::Parse(db, tmpl->sql);
    if (!bound.ok() || bound.value().plan == nullptr) continue;
    WalkPlan(bound.value().plan.get(), &facts);
  }

  if (config.propose_indexes) {
    for (const auto &[table_name, col] : facts.scan_filters) {
      Table *table = catalog.GetTable(table_name);
      if (table == nullptr) continue;
      if (table->ApproxLiveRows() < config.min_table_rows) continue;
      if (col >= table->schema().NumColumns()) continue;
      // Skip when any index (ready or building) already leads with this
      // column — the scan will (or is about to) use it.
      bool covered = false;
      for (const BPlusTree *index : catalog.GetTableIndexes(table_name)) {
        if (!index->schema().key_columns.empty() &&
            index->schema().key_columns[0] == col) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      IndexSchema schema;
      schema.name = ControllerIndexName(table_name, table->schema().GetColumn(col).name);
      schema.table_name = table_name;
      schema.key_columns = {col};
      candidates.push_back(
          Action::CreateIndex(std::move(schema), config.index_build_threads));
    }
  }

  if (config.propose_drops) {
    for (const std::string &name : catalog.IndexNames()) {
      if (name.rfind("ctrl_", 0) != 0) continue;  // only our own indexes
      if (facts.used_indexes.count(name) > 0) continue;
      candidates.push_back(Action::DropIndex(name));
    }
  }

  if (config.propose_knobs) {
    // A bounded palette per knob. Values equal to the current setting are
    // skipped; the Planner prices the rest against the forecast.
    const struct {
      const char *knob;
      double values[3];
      int count;
    } kPalette[] = {
        {"execution_mode", {0, 1, 2}, 3},
        {"gc_interval_us", {1000, 10000, 100000}, 3},
        {"log_flush_interval_us", {1000, 10000, 100000}, 3},
        {"net_queue_depth", {64, 256, 1024}, 3},
        {"sql_plan_cache_capacity", {0, 1024, 4096}, 3},
        {"buffer_pool_pages", {256, 1024, 4096}, 3},
    };
    for (const auto &entry : kPalette) {
      // Buffer-pool sizing only matters once a disk heap exists.
      if (std::string(entry.knob) == "buffer_pool_pages" &&
          db->buffer_pool() == nullptr) {
        continue;
      }
      const double current = db->settings().GetDouble(entry.knob);
      for (int i = 0; i < entry.count; i++) {
        if (entry.values[i] == current) continue;
        candidates.push_back(Action::ChangeKnob(entry.knob, entry.values[i]));
      }
    }
  }

  return candidates;
}

}  // namespace mb2::ctrl
