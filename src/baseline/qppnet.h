#pragma once

/// \file qppnet.h
/// QPPNet-style baseline (Marcus & Papaemmanouil, VLDB'19): a
/// plan-structured neural network in which each operator type owns a small
/// "neural unit" whose input is the operator's plan features concatenated
/// with the sum of its children's hidden outputs; the root unit's first
/// output is the predicted query latency. Trained end-to-end by
/// backpropagation through the plan tree on (plan, latency) pairs. As in
/// the paper's adaptation, disk-oriented features are dropped and the
/// per-operator feature vector matches our in-memory engine.
///
/// This is the monolithic external model MB2 is compared against in Fig 7:
/// it sees whole plans and absolute cardinalities, so it must be retrained
/// per dataset/workload and extrapolates poorly across scales.

#include <map>
#include <vector>

#include "common/rng.h"
#include "ml/matrix.h"
#include "plan/plan_node.h"

namespace mb2 {

struct PlanSample {
  const PlanNode *plan;
  double latency_us;
};

class QppNet {
 public:
  static constexpr size_t kFeatureDim = 8;
  static constexpr size_t kHiddenDim = 16;
  static constexpr size_t kOutputDim = 8;

  explicit QppNet(uint32_t epochs = 200, double learning_rate = 1e-3,
                  uint64_t seed = 42)
      : epochs_(epochs), learning_rate_(learning_rate), rng_(seed) {}

  void Fit(const std::vector<PlanSample> &samples);
  double PredictUs(const PlanNode &plan) const;

  /// Raw per-node plan features (exposed for tests).
  static std::vector<double> NodeFeatures(const PlanNode &node);

 private:
  struct Unit {
    // Layer 1: kHiddenDim × (kFeatureDim + kOutputDim); layer 2: kOutputDim ×
    // kHiddenDim. Flat row-major plus Adam moments.
    std::vector<double> w1, b1, w2, b2;
    std::vector<double> mw1, vw1, mb1, vb1, mw2, vw2, mb2, vb2;
  };

  struct NodeState {
    const PlanNode *node;
    std::vector<double> input;   // standardized features ++ child sum
    std::vector<double> hidden;  // post-ReLU
    std::vector<double> output;
    std::vector<NodeState> children;
  };

  Unit &GetUnit(PlanNodeType type);
  const Unit *FindUnit(PlanNodeType type) const;
  void Forward(const PlanNode &node, NodeState *state) const;
  /// Backprop for one node; accumulates parameter grads and recurses.
  void Backward(const NodeState &state, const std::vector<double> &dout,
                std::map<PlanNodeType, Unit> *grads);
  void AdamStep(uint64_t step);

  uint32_t epochs_;
  double learning_rate_;
  Rng rng_;
  std::map<PlanNodeType, Unit> units_;
  std::map<PlanNodeType, Unit> grad_acc_;
  Standardizer feature_std_;
  double target_scale_ = 1.0;
};

}  // namespace mb2
