#include "baseline/qppnet.h"

#include <cmath>

namespace mb2 {

namespace {
constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kAdamEps = 1e-8;
constexpr size_t kInDim = QppNet::kFeatureDim + QppNet::kOutputDim;

void CollectFeatures(const PlanNode &node, Matrix *out) {
  out->AppendRow(QppNet::NodeFeatures(node));
  for (const auto &child : node.children) CollectFeatures(*child, out);
}

double ExprComplexityOf(const PlanNode &node) {
  switch (node.type) {
    case PlanNodeType::kSeqScan: {
      const auto *scan = node.As<SeqScanPlan>();
      return scan->predicate ? scan->predicate->Complexity() : 0.0;
    }
    case PlanNodeType::kIndexScan: {
      const auto *scan = node.As<IndexScanPlan>();
      return scan->predicate ? scan->predicate->Complexity() : 0.0;
    }
    case PlanNodeType::kProjection: {
      const auto *proj = node.As<ProjectionPlan>();
      double c = 0.0;
      for (const auto &e : proj->exprs) c += e->Complexity();
      return c;
    }
    default:
      return 0.0;
  }
}

}  // namespace

std::vector<double> QppNet::NodeFeatures(const PlanNode &node) {
  double limit = 0.0;
  if (node.type == PlanNodeType::kSort) limit = node.As<SortPlan>()->limit;
  if (node.type == PlanNodeType::kLimit) limit = node.As<LimitPlan>()->limit;
  return {
      node.estimated_rows,
      node.estimated_cardinality,
      static_cast<double>(node.output_schema.NumColumns()),
      static_cast<double>(node.output_schema.TupleByteSize()),
      static_cast<double>(node.children.size()),
      ExprComplexityOf(node),
      limit,
      static_cast<double>(node.type == PlanNodeType::kIndexScan),
  };
}

QppNet::Unit &QppNet::GetUnit(PlanNodeType type) {
  auto it = units_.find(type);
  if (it != units_.end()) return it->second;
  Unit unit;
  unit.w1.resize(kHiddenDim * kInDim);
  unit.b1.assign(kHiddenDim, 0.0);
  unit.w2.resize(kOutputDim * kHiddenDim);
  unit.b2.assign(kOutputDim, 0.0);
  const double s1 = std::sqrt(2.0 / kInDim), s2 = std::sqrt(2.0 / kHiddenDim);
  for (auto &w : unit.w1) w = rng_.Gaussian(0.0, s1);
  for (auto &w : unit.w2) w = rng_.Gaussian(0.0, s2);
  unit.mw1.assign(unit.w1.size(), 0.0);
  unit.vw1.assign(unit.w1.size(), 0.0);
  unit.mb1.assign(unit.b1.size(), 0.0);
  unit.vb1.assign(unit.b1.size(), 0.0);
  unit.mw2.assign(unit.w2.size(), 0.0);
  unit.vw2.assign(unit.w2.size(), 0.0);
  unit.mb2.assign(unit.b2.size(), 0.0);
  unit.vb2.assign(unit.b2.size(), 0.0);
  return units_.emplace(type, std::move(unit)).first->second;
}

const QppNet::Unit *QppNet::FindUnit(PlanNodeType type) const {
  auto it = units_.find(type);
  return it == units_.end() ? nullptr : &it->second;
}

void QppNet::Forward(const PlanNode &node, NodeState *state) const {
  state->node = &node;
  std::vector<double> child_sum(kOutputDim, 0.0);
  state->children.resize(node.children.size());
  for (size_t i = 0; i < node.children.size(); i++) {
    Forward(*node.children[i], &state->children[i]);
    for (size_t j = 0; j < kOutputDim; j++) {
      child_sum[j] += state->children[i].output[j];
    }
  }

  state->input = feature_std_.Transform(NodeFeatures(node));
  state->input.insert(state->input.end(), child_sum.begin(), child_sum.end());

  const Unit *unit = FindUnit(node.type);
  state->hidden.assign(kHiddenDim, 0.0);
  state->output.assign(kOutputDim, 0.0);
  if (unit == nullptr) {
    // Unseen operator type (the paper notes QPPNet cannot infer on plans
    // whose operator combinations were absent from training); pass children
    // through so the prediction degrades instead of crashing.
    state->output = child_sum;
    return;
  }
  // Dense layers via the shared transpose-B GEMM kernel (n = 1): bias-first
  // init plus ascending accumulation reproduces the hand-rolled loops bit
  // for bit.
  state->hidden = unit->b1;
  GemmTransposeBKernel(state->input.data(), unit->w1.data(),
                       state->hidden.data(), 1, kInDim, kHiddenDim,
                       /*accumulate=*/true);
  for (double &h : state->hidden) h = h > 0.0 ? h : 0.0;
  // Linear outputs: a ReLU here creates dead units at the root (the loss
  // gradient vanishes whenever the prediction starts negative). Final
  // predictions are clamped non-negative in PredictUs instead.
  state->output = unit->b2;
  GemmTransposeBKernel(state->hidden.data(), unit->w2.data(),
                       state->output.data(), 1, kHiddenDim, kOutputDim,
                       /*accumulate=*/true);
}

void QppNet::Backward(const NodeState &state, const std::vector<double> &dout,
                      std::map<PlanNodeType, Unit> *grads) {
  const Unit *unit = FindUnit(state.node->type);
  std::vector<double> dchild(kOutputDim, 0.0);
  if (unit == nullptr) {
    dchild = dout;  // pass-through node
  } else {
    Unit &g = (*grads)[state.node->type];
    if (g.w1.empty()) {
      g.w1.assign(unit->w1.size(), 0.0);
      g.b1.assign(unit->b1.size(), 0.0);
      g.w2.assign(unit->w2.size(), 0.0);
      g.b2.assign(unit->b2.size(), 0.0);
    }
    // Linear output layer: gradient passes straight through.
    const std::vector<double> &dz2 = dout;
    std::vector<double> dh(kHiddenDim, 0.0);
    for (size_t o = 0; o < kOutputDim; o++) {
      if (dz2[o] == 0.0) continue;
      double *gw = g.w2.data() + o * kHiddenDim;
      const double *w = unit->w2.data() + o * kHiddenDim;
      for (size_t h = 0; h < kHiddenDim; h++) {
        gw[h] += dz2[o] * state.hidden[h];
        dh[h] += dz2[o] * w[h];
      }
      g.b2[o] += dz2[o];
    }
    for (size_t h = 0; h < kHiddenDim; h++) {
      if (state.hidden[h] <= 0.0) dh[h] = 0.0;
    }
    std::vector<double> dx(kInDim, 0.0);
    for (size_t h = 0; h < kHiddenDim; h++) {
      if (dh[h] == 0.0) continue;
      double *gw = g.w1.data() + h * kInDim;
      const double *w = unit->w1.data() + h * kInDim;
      for (size_t i = 0; i < kInDim; i++) {
        gw[i] += dh[h] * state.input[i];
        dx[i] += dh[h] * w[i];
      }
      g.b1[h] += dh[h];
    }
    for (size_t j = 0; j < kOutputDim; j++) dchild[j] = dx[kFeatureDim + j];
  }
  for (const auto &child : state.children) Backward(child, dchild, grads);
}

void QppNet::AdamStep(uint64_t step) {
  const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
  auto update = [&](std::vector<double> &w, std::vector<double> &m,
                    std::vector<double> &v, const std::vector<double> &g) {
    for (size_t i = 0; i < w.size(); i++) {
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * g[i];
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * g[i] * g[i];
      w[i] -= learning_rate_ * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + kAdamEps);
    }
  };
  for (auto &[type, grad] : grad_acc_) {
    if (grad.w1.empty()) continue;
    Unit &unit = units_.at(type);
    update(unit.w1, unit.mw1, unit.vw1, grad.w1);
    update(unit.b1, unit.mb1, unit.vb1, grad.b1);
    update(unit.w2, unit.mw2, unit.vw2, grad.w2);
    update(unit.b2, unit.mb2, unit.vb2, grad.b2);
  }
}

void QppNet::Fit(const std::vector<PlanSample> &samples) {
  if (samples.empty()) return;

  // Fit the feature standardizer over all nodes of all training plans and
  // the target scale over latencies.
  Matrix all_features;
  double latency_sum = 0.0;
  for (const auto &s : samples) {
    CollectFeatures(*s.plan, &all_features);
    latency_sum += s.latency_us;
  }
  feature_std_.Fit(all_features);
  target_scale_ = std::max(1.0, latency_sum / samples.size());

  // Pre-create units for every operator type seen.
  for (const auto &s : samples) {
    std::vector<const PlanNode *> stack = {s.plan};
    while (!stack.empty()) {
      const PlanNode *node = stack.back();
      stack.pop_back();
      GetUnit(node->type);
      for (const auto &c : node->children) stack.push_back(c.get());
    }
  }

  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  uint64_t step = 0;
  constexpr size_t kBatch = 8;

  for (uint32_t epoch = 0; epoch < epochs_; epoch++) {
    rng_.Shuffle(&order);
    for (size_t start = 0; start < order.size(); start += kBatch) {
      grad_acc_.clear();
      const size_t end = std::min(start + kBatch, order.size());
      for (size_t i = start; i < end; i++) {
        const PlanSample &s = samples[order[i]];
        NodeState root;
        Forward(*s.plan, &root);
        const double target = s.latency_us / target_scale_;
        std::vector<double> dout(kOutputDim, 0.0);
        dout[0] = 2.0 * (root.output[0] - target) / (end - start);
        Backward(root, dout, &grad_acc_);
      }
      step++;
      AdamStep(step);
    }
  }
}

double QppNet::PredictUs(const PlanNode &plan) const {
  NodeState root;
  Forward(plan, &root);
  return std::max(0.0, root.output[0]) * target_scale_;
}

}  // namespace mb2
