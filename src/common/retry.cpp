#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mb2 {

int64_t BackoffDelayUs(const RetryPolicy &policy, uint32_t attempt, Rng *rng) {
  if (attempt == 0) return 0;
  // Shift-safe doubling: cap the exponent before it can overflow.
  const uint32_t exp = std::min(attempt - 1, 62u);
  int64_t delay = policy.base_backoff_us;
  for (uint32_t i = 0; i < exp && delay < policy.max_backoff_us; i++) delay *= 2;
  delay = std::min(delay, policy.max_backoff_us);
  if (rng != nullptr && policy.jitter_frac > 0.0) {
    const double factor =
        rng->Uniform(1.0 - policy.jitter_frac, 1.0 + policy.jitter_frac);
    delay = static_cast<int64_t>(static_cast<double>(delay) * factor);
  }
  return std::max<int64_t>(delay, 0);
}

Status RetryWithBackoff(const RetryPolicy &policy,
                        const std::function<Status()> &op, Rng *rng,
                        uint32_t *attempts_out) {
  const uint32_t budget = std::max(1u, policy.max_attempts);
  Status status;
  uint32_t attempts = 0;
  for (uint32_t attempt = 0; attempt < budget; attempt++) {
    if (attempt > 0) {
      const int64_t delay = BackoffDelayUs(policy, attempt, rng);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
    attempts++;
    status = op();
    if (status.ok()) break;
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return status;
}

}  // namespace mb2
