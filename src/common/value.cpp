#include "common/value.h"

#include <functional>

namespace mb2 {

uint32_t TypeSize(TypeId type) {
  switch (type) {
    case TypeId::kInteger: return 8;
    case TypeId::kDouble: return 8;
    case TypeId::kVarchar: return 16;  // average assumption for planning
  }
  return 8;
}

const char *TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInteger: return "INTEGER";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kVarchar: return "VARCHAR";
  }
  return "UNKNOWN";
}

uint32_t Value::StorageSize() const {
  if (type_ == TypeId::kVarchar) return static_cast<uint32_t>(str_.size());
  return 8;
}

int Value::Compare(const Value &other) const {
  if (type_ == TypeId::kVarchar || other.type_ == TypeId::kVarchar) {
    MB2_ASSERT(type_ == TypeId::kVarchar && other.type_ == TypeId::kVarchar,
               "varchar compared against numeric");
    return str_.compare(other.str_) < 0 ? -1 : (str_ == other.str_ ? 0 : 1);
  }
  if (type_ == TypeId::kInteger && other.type_ == TypeId::kInteger) {
    if (int_ < other.int_) return -1;
    return int_ == other.int_ ? 0 : 1;
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  if (a < b) return -1;
  return a == b ? 0 : 1;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case TypeId::kInteger: {
      // SplitMix64 finalizer: cheap and well distributed for dense keys.
      uint64_t x = static_cast<uint64_t>(int_) + 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    }
    case TypeId::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      __builtin_memcpy(&bits, &double_, sizeof(bits));
      return Value::Integer(static_cast<int64_t>(bits)).Hash();
    }
    case TypeId::kVarchar: return std::hash<std::string>{}(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kInteger: return std::to_string(int_);
    case TypeId::kDouble: return std::to_string(double_);
    case TypeId::kVarchar: return str_;
  }
  return "";
}

uint32_t TupleSize(const Tuple &tuple) {
  uint32_t size = 0;
  for (const auto &v : tuple) size += v.StorageSize();
  return size;
}

uint64_t HashColumns(const Tuple &tuple, const std::vector<uint32_t> &cols) {
  uint64_t seed = 0x51ed270b7a2cca35ULL;
  for (uint32_t c : cols) seed = HashCombine(seed, tuple[c].Hash());
  return seed;
}

}  // namespace mb2
