#pragma once

/// \file csv.h
/// Minimal CSV reader/writer for the training-data repository. Values are
/// doubles only (feature/label matrices); the first row is a header.

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace mb2 {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  static Result<CsvWriter> Open(const std::string &path,
                                const std::vector<std::string> &header);

  /// Appends one data row; must match the header width.
  void WriteRow(const std::vector<double> &row);

  /// Flushes and closes the file. Safe to call more than once.
  void Close();

  ~CsvWriter() { Close(); }
  CsvWriter(CsvWriter &&other) noexcept;
  CsvWriter &operator=(CsvWriter &&other) noexcept;
  CsvWriter(const CsvWriter &) = delete;
  CsvWriter &operator=(const CsvWriter &) = delete;

 private:
  CsvWriter() = default;
  void *file_ = nullptr;  // FILE*
  size_t width_ = 0;
};

struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Reads an entire numeric CSV file into memory.
Result<CsvData> ReadCsv(const std::string &path);

struct CsvMatrix {
  std::vector<std::string> header;
  Matrix values;  ///< one row per data line, header-width columns
};

/// Reads a numeric CSV straight into a pre-reserved Matrix: one pass counts
/// lines so the matrix reserves its exact final size, a second pass parses
/// into it — no per-row heap vectors. Rows whose field count differs from
/// the header width are skipped (they would be ragged in the matrix).
Result<CsvMatrix> ReadCsvMatrix(const std::string &path);

}  // namespace mb2
