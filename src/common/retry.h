#pragma once

/// \file retry.h
/// Bounded retry with exponential backoff + jitter. Shared by the WAL (append
/// and flush surface errors only after a retry budget is exhausted) and the
/// workload driver (aborted MVCC transactions are retried before counting as
/// failures). Jitter decorrelates retrying threads so they don't re-collide.

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/status.h"

namespace mb2 {

struct RetryPolicy {
  /// Total tries, including the first. 1 = no retry.
  uint32_t max_attempts = 4;
  int64_t base_backoff_us = 100;
  int64_t max_backoff_us = 20000;
  /// Backoff is perturbed uniformly in [1 - jitter, 1 + jitter].
  double jitter_frac = 0.25;
};

/// Backoff before retry number `attempt` (1 = first retry):
/// min(base * 2^(attempt-1), max), jittered. `rng` may be null (no jitter).
int64_t BackoffDelayUs(const RetryPolicy &policy, uint32_t attempt, Rng *rng);

/// Runs `op` until it returns OK or the attempt budget is spent, sleeping the
/// backoff between attempts. Returns the final status; `attempts_out` (may be
/// null) reports how many times `op` ran.
Status RetryWithBackoff(const RetryPolicy &policy,
                        const std::function<Status()> &op, Rng *rng = nullptr,
                        uint32_t *attempts_out = nullptr);

}  // namespace mb2
