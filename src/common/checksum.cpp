#include "common/checksum.h"

#include <array>
#include <cstdio>

namespace mb2 {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t c = i;
    for (int k = 0; k < 8; k++) {
      c = (c & 1) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void *data, size_t len, uint32_t crc) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto *bytes = static_cast<const uint8_t *>(data);
  uint32_t c = crc ^ 0xffffffffU;
  for (size_t i = 0; i < len; i++) {
    c = table[(c ^ bytes[i]) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

Result<uint32_t> Crc32OfFile(const std::string &path, int64_t skip_trailing) {
  FILE *f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const int64_t size = std::ftell(f);
  if (size < skip_trailing) {
    std::fclose(f);
    return Status::InvalidArgument(path + " shorter than its checksum footer");
  }
  std::fseek(f, 0, SEEK_SET);
  uint32_t crc = 0;
  uint8_t buf[1 << 14];
  int64_t remaining = size - skip_trailing;
  while (remaining > 0) {
    const size_t want = static_cast<size_t>(
        remaining < static_cast<int64_t>(sizeof(buf)) ? remaining : sizeof(buf));
    const size_t got = std::fread(buf, 1, want, f);
    if (got == 0) {
      std::fclose(f);
      return Status::IoError("short read while checksumming " + path);
    }
    crc = Crc32(buf, got, crc);
    remaining -= static_cast<int64_t>(got);
  }
  std::fclose(f);
  return crc;
}

}  // namespace mb2
