#pragma once

/// \file serde.h
/// Minimal binary serialization for model persistence (file-backed
/// BinaryWriter/BinaryReader) and for wire-protocol payloads (in-memory
/// ByteWriter/ByteReader, same Put/Get surface): scalars, strings, and
/// double vectors with a leading magic/version header. Little-endian host
/// assumption (x86-64 / aarch64 targets).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace mb2 {

class BinaryWriter {
 public:
  static Result<BinaryWriter> Open(const std::string &path) {
    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot open " + path);
    BinaryWriter w;
    w.file_ = f;
    return w;
  }

  BinaryWriter(BinaryWriter &&other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  BinaryWriter &operator=(BinaryWriter &&other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  BinaryWriter(const BinaryWriter &) = delete;
  BinaryWriter &operator=(const BinaryWriter &) = delete;
  ~BinaryWriter() { Close(); }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  /// False once any write failed (disk full, closed stream). Check before
  /// trusting a written file.
  bool ok() const { return !failed_; }

  void Flush() {
    if (file_ != nullptr && std::fflush(file_) != 0) failed_ = true;
  }

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (std::fwrite(&value, sizeof(T), 1, file_) != 1) failed_ = true;
  }

  void PutString(const std::string &s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    if (std::fwrite(s.data(), 1, s.size(), file_) != s.size()) failed_ = true;
  }

  void PutDoubles(const std::vector<double> &v) {
    Put<uint64_t>(v.size());
    if (std::fwrite(v.data(), sizeof(double), v.size(), file_) != v.size()) {
      failed_ = true;
    }
  }

 private:
  BinaryWriter() = default;
  FILE *file_ = nullptr;
  bool failed_ = false;
};

class BinaryReader {
 public:
  static Result<BinaryReader> Open(const std::string &path) {
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IoError("cannot open " + path);
    BinaryReader r;
    r.file_ = f;
    std::fseek(f, 0, SEEK_END);
    r.size_ = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    return r;
  }

  BinaryReader(BinaryReader &&other) noexcept
      : file_(other.file_), size_(other.size_), failed_(other.failed_) {
    other.file_ = nullptr;
  }
  BinaryReader &operator=(BinaryReader &&other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      size_ = other.size_;
      failed_ = other.failed_;
      other.file_ = nullptr;
    }
    return *this;
  }
  BinaryReader(const BinaryReader &) = delete;
  BinaryReader &operator=(const BinaryReader &) = delete;
  ~BinaryReader() { Close(); }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  bool ok() const { return !failed_; }

  /// Loaders call this when a decoded payload is structurally inconsistent
  /// (e.g. a matrix whose element count disagrees with its dimensions), so
  /// the corruption propagates to every caller checking ok().
  void MarkCorrupt() { failed_ = true; }

  /// Bytes left between the cursor and end-of-file. Length prefixes larger
  /// than this are corrupt by construction — callers reject them before
  /// allocating.
  int64_t RemainingBytes() const {
    if (file_ == nullptr) return 0;
    const int64_t pos = std::ftell(file_);
    return pos < 0 ? 0 : size_ - pos;
  }

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (std::fread(&value, sizeof(T), 1, file_) != 1) failed_ = true;
    return value;
  }

  std::string GetString() {
    const uint32_t len = Get<uint32_t>();
    if (failed_ || len > (1u << 20) ||
        static_cast<int64_t>(len) > RemainingBytes()) {
      failed_ = true;
      return {};
    }
    std::string s(len, '\0');
    if (len > 0 && std::fread(s.data(), 1, len, file_) != len) failed_ = true;
    return s;
  }

  std::vector<double> GetDoubles() {
    const uint64_t n = Get<uint64_t>();
    // A count that exceeds what the file can still hold is a truncation or
    // an overrun — fail before allocating, not after a short read.
    if (failed_ || n > (1ull << 30) ||
        static_cast<int64_t>(n * sizeof(double)) > RemainingBytes()) {
      failed_ = true;
      return {};
    }
    std::vector<double> v(n);
    if (n > 0 && std::fread(v.data(), sizeof(double), n, file_) != n) {
      failed_ = true;
    }
    return v;
  }

 private:
  BinaryReader() = default;
  FILE *file_ = nullptr;
  int64_t size_ = 0;
  bool failed_ = false;
};

/// In-memory counterpart of BinaryWriter used to build wire-protocol
/// payloads (src/net). Appends to an owned byte buffer; never fails.
class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t off = bytes_.size();
    bytes_.resize(off + sizeof(T));
    std::memcpy(bytes_.data() + off, &value, sizeof(T));
  }

  void PutString(const std::string &s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutDoubles(const std::vector<double> &v) {
    Put<uint64_t>(v.size());
    PutRaw(v.data(), v.size() * sizeof(double));
  }

  void PutRaw(const void *data, size_t len) {
    const size_t off = bytes_.size();
    bytes_.resize(off + len);
    if (len > 0) std::memcpy(bytes_.data() + off, data, len);
  }

  const std::vector<uint8_t> &bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// In-memory counterpart of BinaryReader for decoding wire-protocol
/// payloads. Non-owning view; every Get is bounds-checked against the
/// buffer end so truncated or hostile payloads fail cleanly instead of
/// over-reading.
class ByteReader {
 public:
  ByteReader(const void *data, size_t len)
      : data_(static_cast<const uint8_t *>(data)), size_(len) {}

  bool ok() const { return !failed_; }
  /// Decoders call this when a payload is structurally inconsistent (e.g. a
  /// count that disagrees with the remaining bytes).
  void MarkCorrupt() { failed_ = true; }

  int64_t RemainingBytes() const {
    return static_cast<int64_t>(size_) - static_cast<int64_t>(pos_);
  }

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (failed_ || pos_ + sizeof(T) > size_) {
      failed_ = true;
      return value;
    }
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string GetString() {
    const uint32_t len = Get<uint32_t>();
    if (failed_ || len > (1u << 24) ||
        static_cast<int64_t>(len) > RemainingBytes()) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<double> GetDoubles() {
    const uint64_t n = Get<uint64_t>();
    if (failed_ || n > (1ull << 27) ||
        static_cast<int64_t>(n * sizeof(double)) > RemainingBytes()) {
      failed_ = true;
      return {};
    }
    std::vector<double> v(n);
    if (n > 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  /// Copies `len` raw bytes into `out`. The caller supplies the length (from
  /// its own validated prefix); truncation fails cleanly like every Get.
  bool GetRaw(void *out, size_t len) {
    if (failed_ || pos_ + len > size_) {
      failed_ = true;
      return false;
    }
    if (len > 0) std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const uint8_t *data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace mb2
