#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool used by the parallel index builder, the parallel
/// OU-runner sweeps, and the parallel model trainer.
///
/// Semantics:
///  - Submit() enqueues a task; tasks may themselves Submit() more work
///    (including during shutdown — the destructor drains the queue before
///    joining, and every queued task runs exactly once).
///  - WaitAll() blocks until the pool is idle and rethrows the first
///    exception thrown by any task since the last WaitAll(). Never call it
///    from inside a task running on the same pool: it waits for *all*
///    outstanding tasks, including the caller's own, and would deadlock.
///  - The destructor runs any still-queued tasks, then joins the workers. An
///    unreported task exception is dropped at that point (destructors cannot
///    throw), so call WaitAll() if failures matter.

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace mb2 {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  MB2_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception observed since the previous WaitAll() (if any).
  void WaitAll();

  size_t NumThreads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t outstanding_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
};

}  // namespace mb2
