#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool used by the parallel index builder and the
/// concurrent runners.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace mb2 {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  MB2_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitAll();

  size_t NumThreads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace mb2
