#pragma once

/// \file rng.h
/// Deterministic pseudo-random generation used by workload generators and
/// the ML library. A thin wrapper over xoshiro256** plus distribution
/// helpers (uniform, zipfian, gaussian, alphanumeric strings).

#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace mb2 {

/// xoshiro256** generator: fast, high quality, reproducible across builds.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto &word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Templated over integral types so
  /// mixed int/int64 call sites resolve without ambiguity vs. the double
  /// overload.
  template <typename A, typename B,
            typename = std::enable_if_t<std::is_integral_v<A> &&
                                        std::is_integral_v<B>>>
  int64_t Uniform(A lo_arg, B hi_arg) {
    const int64_t lo = static_cast<int64_t>(lo_arg);
    const int64_t hi = static_cast<int64_t>(hi_arg);
    if (hi <= lo) return lo;
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 1e-12) u1 = NextDouble();
    const double u2 = NextDouble();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// TPC-C style NURand non-uniform distribution.
  int64_t NuRand(int64_t a, int64_t x, int64_t y, int64_t c = 42) {
    return (((Uniform(int64_t{0}, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random alphanumeric string of the given length.
  std::string AlphaString(size_t len) {
    static constexpr char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; i++) out.push_back(kChars[Next() % 62]);
    return out;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T> *v) {
    for (size_t i = v->size(); i > 1; i--) {
      std::swap((*v)[i - 1], (*v)[Next() % i]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Zipfian generator over [0, n) with parameter theta, using the Gray et al.
/// rejection-free method (precomputed zeta).
class Zipf {
 public:
  Zipf(uint64_t n, double theta, uint64_t seed = 7)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace mb2
