#pragma once

/// \file value.h
/// Typed runtime values and tuples for the in-memory engine. The engine is
/// row-oriented: a Tuple is a vector of Values matching a Schema.

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace mb2 {

/// SQL types supported by the engine.
enum class TypeId : uint8_t { kInteger, kDouble, kVarchar };

/// Returns the nominal storage width in bytes for a type; varchars report
/// their per-value length at runtime via Value::StorageSize().
uint32_t TypeSize(TypeId type);

const char *TypeName(TypeId type);

/// A dynamically typed runtime value. Comparison across mismatched types is
/// an invariant violation (the planner type-checks expressions up front).
class Value {
 public:
  Value() : type_(TypeId::kInteger), int_(0) {}
  static Value Integer(int64_t v) { Value out; out.type_ = TypeId::kInteger; out.int_ = v; return out; }
  static Value Double(double v) { Value out; out.type_ = TypeId::kDouble; out.double_ = v; return out; }
  static Value Varchar(std::string v) {
    Value out;
    out.type_ = TypeId::kVarchar;
    out.str_ = std::move(v);
    return out;
  }

  TypeId type() const { return type_; }
  int64_t AsInt() const { MB2_ASSERT(type_ == TypeId::kInteger, "not an integer"); return int_; }
  double AsDouble() const {
    if (type_ == TypeId::kInteger) return static_cast<double>(int_);
    MB2_ASSERT(type_ == TypeId::kDouble, "not numeric");
    return double_;
  }
  const std::string &AsVarchar() const { MB2_ASSERT(type_ == TypeId::kVarchar, "not a varchar"); return str_; }

  /// Bytes this value occupies in the row store (used for tuple-size
  /// features and memory accounting).
  uint32_t StorageSize() const;

  /// Three-way comparison; both values must share a type (integers compare
  /// with doubles numerically).
  int Compare(const Value &other) const;

  bool operator==(const Value &other) const { return Compare(other) == 0; }
  bool operator<(const Value &other) const { return Compare(other) < 0; }

  /// 64-bit hash for hash joins / aggregations.
  uint64_t Hash() const;

  std::string ToString() const;

 private:
  TypeId type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

using Tuple = std::vector<Value>;

/// Total storage bytes of a tuple.
uint32_t TupleSize(const Tuple &tuple);

/// Combines two hashes (boost::hash_combine construction).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a subset of tuple columns; used as hash-table key.
uint64_t HashColumns(const Tuple &tuple, const std::vector<uint32_t> &cols);

}  // namespace mb2
