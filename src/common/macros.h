#pragma once

/// \file macros.h
/// Common preprocessor macros used across the MB2 codebase.

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Disallow copy construction and copy assignment for a class.
#define MB2_DISALLOW_COPY(cname)      \
  cname(const cname &) = delete;      \
  cname &operator=(const cname &) = delete

/// Disallow move construction and move assignment for a class.
#define MB2_DISALLOW_MOVE(cname) \
  cname(cname &&) = delete;      \
  cname &operator=(cname &&) = delete

#define MB2_DISALLOW_COPY_AND_MOVE(cname) \
  MB2_DISALLOW_COPY(cname);               \
  MB2_DISALLOW_MOVE(cname)

/// Assertion that is active in all build types. Used for invariants whose
/// violation would corrupt the database state.
#define MB2_ASSERT(expr, message)                                              \
  do {                                                                         \
    if (!(expr)) {                                                             \
      std::fprintf(stderr, "assertion failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, (message));                                       \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#define MB2_UNREACHABLE(message) MB2_ASSERT(false, message)

#define MB2_UNUSED(x) ((void)(x))
