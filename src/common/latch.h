#pragma once

/// \file latch.h
/// Lightweight synchronization primitives used inside the engine. The B+tree
/// and transaction manager deliberately use real latches so that parallel
/// invocations exhibit genuine contention — the behavior the "contending"
/// OU-models (Sec 4.2) must learn.

#include <atomic>
#include <shared_mutex>

#include "common/macros.h"

namespace mb2 {

/// Test-and-test-and-set spin latch with exponential pause.
class SpinLatch {
 public:
  SpinLatch() = default;
  MB2_DISALLOW_COPY_AND_MOVE(SpinLatch);

  void Lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

  /// RAII guard.
  class ScopedLock {
   public:
    explicit ScopedLock(SpinLatch *latch) : latch_(latch) { latch_->Lock(); }
    ~ScopedLock() { latch_->Unlock(); }
    MB2_DISALLOW_COPY_AND_MOVE(ScopedLock);

   private:
    SpinLatch *latch_;
  };

 private:
  std::atomic<bool> flag_{false};
};

/// Reader-writer latch (wrapper so we can later swap the implementation
/// without touching call sites).
class SharedLatch {
 public:
  void LockShared() { mutex_.lock_shared(); }
  void UnlockShared() { mutex_.unlock_shared(); }
  void LockExclusive() { mutex_.lock(); }
  void UnlockExclusive() { mutex_.unlock(); }
  bool TryLockExclusive() { return mutex_.try_lock(); }

 private:
  std::shared_mutex mutex_;
};

}  // namespace mb2
