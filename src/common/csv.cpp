#include "common/csv.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace mb2 {

Result<CsvWriter> CsvWriter::Open(const std::string &path,
                                  const std::vector<std::string> &header) {
  FILE *f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  CsvWriter writer;
  writer.file_ = f;
  writer.width_ = header.size();
  for (size_t i = 0; i < header.size(); i++) {
    std::fprintf(f, "%s%s", header[i].c_str(), i + 1 == header.size() ? "\n" : ",");
  }
  return writer;
}

CsvWriter::CsvWriter(CsvWriter &&other) noexcept
    : file_(other.file_), width_(other.width_) {
  other.file_ = nullptr;
}

CsvWriter &CsvWriter::operator=(CsvWriter &&other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    width_ = other.width_;
    other.file_ = nullptr;
  }
  return *this;
}

void CsvWriter::WriteRow(const std::vector<double> &row) {
  MB2_ASSERT(file_ != nullptr, "writer closed");
  MB2_ASSERT(row.size() == width_, "row width mismatch");
  FILE *f = static_cast<FILE *>(file_);
  for (size_t i = 0; i < row.size(); i++) {
    std::fprintf(f, "%.17g%s", row[i], i + 1 == row.size() ? "\n" : ",");
  }
}

void CsvWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE *>(file_));
    file_ = nullptr;
  }
}

Result<CsvData> ReadCsv(const std::string &path) {
  FILE *f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  CsvData data;
  char line[1 << 16];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) line[--len] = '\0';
    if (len == 0) continue;
    if (first) {
      first = false;
      char *start = line;
      for (size_t i = 0; i <= len; i++) {
        if (line[i] == ',' || line[i] == '\0') {
          data.header.emplace_back(start, line + i);
          start = line + i + 1;
        }
      }
      continue;
    }
    std::vector<double> row;
    row.reserve(data.header.size());
    const char *p = line;
    char *end = nullptr;
    for (;;) {
      row.push_back(std::strtod(p, &end));
      if (*end != ',') break;
      p = end + 1;
    }
    data.rows.push_back(std::move(row));
  }
  std::fclose(f);
  return data;
}

Result<CsvMatrix> ReadCsvMatrix(const std::string &path) {
  FILE *f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  CsvMatrix data;
  char line[1 << 16];

  // Pass 1: header + data-line count, so the matrix reserves exactly once.
  size_t n_lines = 0;
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) line[--len] = '\0';
    if (len == 0) continue;
    if (first) {
      first = false;
      char *start = line;
      for (size_t i = 0; i <= len; i++) {
        if (line[i] == ',' || line[i] == '\0') {
          data.header.emplace_back(start, line + i);
          start = line + i + 1;
        }
      }
      continue;
    }
    n_lines++;
  }

  const size_t width = data.header.size();
  data.values.Reserve(n_lines, width);
  std::vector<double> row(width, 0.0);

  // Pass 2: parse rows straight into the reserved matrix.
  std::rewind(f);
  first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) line[--len] = '\0';
    if (len == 0) continue;
    if (first) {
      first = false;  // header already parsed in pass 1
      continue;
    }
    size_t n_fields = 0;
    const char *p = line;
    char *end = nullptr;
    for (;;) {
      const double v = std::strtod(p, &end);
      if (n_fields < width) row[n_fields] = v;
      n_fields++;
      if (*end != ',') break;
      p = end + 1;
    }
    if (n_fields != width) continue;  // ragged row: no place in the matrix
    data.values.AppendRow(row.data(), width);
  }
  std::fclose(f);
  return data;
}

}  // namespace mb2
