#include "common/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace mb2 {

FaultInjector &FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

FaultInjector::FaultInjector() {
  const char *env = std::getenv("MB2_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    Status s = ArmFromSpec(env);
    if (!s.ok()) {
      std::fprintf(stderr, "MB2_FAULTS ignored: %s\n", s.ToString().c_str());
    }
  }
}

void FaultInjector::Arm(const std::string &point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState &state = points_[point];
  if (!state.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  state.spec = std::move(spec);
  state.armed = true;
  state.fires = 0;
  state.hits = 0;
}

void FaultInjector::Disarm(const std::string &point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_ = Rng(seed);
}

FaultCheck FaultInjector::Hit(const char *point) {
  FaultCheck check;
  if (!Armed()) return check;
  int64_t delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return check;
    PointState &state = it->second;
    state.hits++;
    if (state.hits <= state.spec.after_hits) return check;
    if (state.spec.max_fires >= 0 &&
        state.fires >= static_cast<uint64_t>(state.spec.max_fires)) {
      return check;
    }
    if (state.spec.probability < 1.0 &&
        rng_.NextDouble() >= state.spec.probability) {
      return check;
    }
    state.fires++;
    check.action = state.spec.action;
    check.torn_fraction = state.spec.torn_fraction;
    check.message = state.spec.message.c_str();
    if (check.action == FaultAction::kDelay) {
      // The stall happens outside the registry lock so concurrent hits on
      // other points (or other threads in the same point) are not serialized
      // behind an injected sleep.
      check.delayed = true;
      delay_us = state.spec.delay_us;
    } else {
      check.fire = true;
    }
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return check;
}

uint64_t FaultInjector::HitCount(const std::string &point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FireCount(const std::string &point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto &[name, state] : points_) {
    if (state.armed) out.push_back(name);
  }
  return out;
}

Status FaultInjector::ArmFromSpec(const std::string &spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry needs 'point=...': " + entry);
    }
    const std::string point = entry.substr(0, eq);
    FaultSpec fs;
    fs.message = "armed via spec";

    size_t tpos = eq + 1;
    while (tpos <= entry.size()) {
      size_t tend = entry.find(',', tpos);
      if (tend == std::string::npos) tend = entry.size();
      const std::string token = entry.substr(tpos, tend - tpos);
      tpos = tend + 1;
      if (token.empty()) continue;
      try {
        if (token[0] == 'p') {
          fs.probability = std::stod(token.substr(1));
        } else if (token[0] == 'n') {
          fs.after_hits = std::stoull(token.substr(1));
        } else if (token[0] == 'x') {
          fs.max_fires = std::stoll(token.substr(1));
        } else if (token == "error") {
          fs.action = FaultAction::kError;
        } else if (token == "throw") {
          fs.action = FaultAction::kThrow;
        } else if (token.rfind("torn", 0) == 0) {
          fs.action = FaultAction::kTornWrite;
          if (token.size() > 4) fs.torn_fraction = std::stod(token.substr(4));
        } else if (token.rfind("delay", 0) == 0) {
          fs.action = FaultAction::kDelay;
          if (token.size() > 5) fs.delay_us = std::stoll(token.substr(5));
        } else {
          return Status::InvalidArgument("unknown fault spec token: " + token);
        }
      } catch (const std::exception &) {
        return Status::InvalidArgument("malformed fault spec token: " + token);
      }
      if (tend == entry.size()) break;
    }
    if (fs.probability < 0.0 || fs.probability > 1.0 ||
        fs.torn_fraction < 0.0 || fs.torn_fraction > 1.0) {
      return Status::InvalidArgument("fault spec fractions must be in [0,1]: " + entry);
    }
    if (fs.delay_us < 0) {
      return Status::InvalidArgument("fault spec delay must be >= 0: " + entry);
    }
    Arm(point, std::move(fs));
  }
  return Status::Ok();
}

}  // namespace mb2
