#pragma once

/// \file stats.h
/// Robust statistics helpers (Sec 6.2 of the paper): MB2 derives OU labels
/// from repeated measurements with the 20% trimmed mean, which tolerates up
/// to a 0.4 breakdown point of outliers.

#include <cstddef>
#include <vector>

namespace mb2 {

double Mean(const std::vector<double> &xs);
double Variance(const std::vector<double> &xs);
double StdDev(const std::vector<double> &xs);

/// Trimmed mean: discard `trim_fraction` of the mass from each tail, then
/// average the rest. trim_fraction=0.2 is MB2's default (Stigler 1973).
double TrimmedMean(std::vector<double> xs, double trim_fraction = 0.2);

double Median(std::vector<double> xs);

/// p in [0, 100]; linear interpolation between order statistics.
double Percentile(std::vector<double> xs, double p);

/// Average relative error |actual - predicted| / |actual|, skipping
/// zero-actual rows. The paper's OLAP metric (Sec 8).
double AverageRelativeError(const std::vector<double> &actual,
                            const std::vector<double> &predicted);

/// Average absolute error |actual - predicted|. The paper's OLTP metric.
double AverageAbsoluteError(const std::vector<double> &actual,
                            const std::vector<double> &predicted);

}  // namespace mb2
