#pragma once

/// \file status.h
/// Lightweight Status / Result types for error propagation without
/// exceptions, following the convention used by Arrow and RocksDB.

#include <optional>
#include <string>
#include <utility>

namespace mb2 {

/// Error categories produced by the engine and the modeling framework.
enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kAborted,
  kIoError,
  kNotSupported,
  kInternal,
  /// The endpoint cannot serve this request by role — e.g. a write sent to
  /// a read-only replica, or a replication fetch sent to a non-primary.
  /// Distinct from kIoError: the transport worked, but the caller should
  /// re-resolve which endpoint is primary instead of retrying here.
  kUnavailable,
};

/// A Status describes the outcome of an operation: OK or an error code with
/// a human-readable message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(ErrorCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(ErrorCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(ErrorCode::kAborted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(ErrorCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(ErrorCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(ErrorCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(ErrorCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string &message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(ErrorCode code) {
    switch (code) {
      case ErrorCode::kOk: return "OK";
      case ErrorCode::kNotFound: return "NotFound";
      case ErrorCode::kAlreadyExists: return "AlreadyExists";
      case ErrorCode::kInvalidArgument: return "InvalidArgument";
      case ErrorCode::kAborted: return "Aborted";
      case ErrorCode::kIoError: return "IoError";
      case ErrorCode::kNotSupported: return "NotSupported";
      case ErrorCode::kInternal: return "Internal";
      case ErrorCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

  ErrorCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}     // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  const Status &status() const { return status_; }
  T &value() { return *value_; }
  const T &value() const { return *value_; }
  T &operator*() { return *value_; }
  const T &operator*() const { return *value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mb2
