#include "common/thread_pool.h"

#include <utility>

#include "common/fault_injector.h"

namespace mb2 {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto &worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    outstanding_++;
  }
  task_available_.notify_one();
}

void ThreadPool::WaitAll() {
  std::exception_ptr eptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return outstanding_ == 0; });
    eptr = std::exchange(first_exception_, nullptr);
  }
  if (eptr) std::rethrow_exception(eptr);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      // Even under shutdown, drain the queue first: every queued task runs
      // exactly once. A worker only exits once the queue is empty, and any
      // task still running on a sibling can re-fill it — that sibling's own
      // loop will then drain what it pushed.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr eptr;
    try {
      // The threadpool.task fault point replaces the task with an injected
      // failure; it surfaces through WaitAll() like any task exception.
      if (FaultInjector::Instance().Armed()) {
        const FaultCheck fc =
            FaultInjector::Instance().Hit(fault_point::kThreadPoolTask);
        if (fc.fire) throw InjectedFault(fc.message);
      }
      task();
    } catch (...) {
      eptr = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (eptr && !first_exception_) first_exception_ = eptr;
      outstanding_--;
      if (outstanding_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mb2
