#pragma once

/// \file fault_injector.h
/// Process-wide fault-injection registry. Subsystems declare named fault
/// points (`wal.flush`, `persistence.read`, ...) and consult the injector on
/// every pass through them; tests (or the MB2_FAULTS environment variable)
/// arm a point to fire probabilistically, on the N-th hit, or a bounded
/// number of times. Firing is deterministic for a fixed seed so failing
/// schedules replay exactly.
///
/// The un-armed fast path is a single relaxed atomic load — production-style
/// runs pay effectively nothing for the instrumentation.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/status.h"

namespace mb2 {

/// Canonical fault-point names. Subsystems pass these to Hit(); tests arm
/// them. (Plain constants, not an enum: plugins/tests may add their own.)
namespace fault_point {
inline constexpr const char *kWalAppend = "wal.append";
inline constexpr const char *kWalFlush = "wal.flush";
inline constexpr const char *kPersistenceWrite = "persistence.write";
inline constexpr const char *kPersistenceRead = "persistence.read";
inline constexpr const char *kTxnCommit = "txn.commit";
inline constexpr const char *kThreadPoolTask = "threadpool.task";
// Network service layer (src/net): firing simulates a transient socket
// failure — the server drops the affected connection, exercising the
// client's reconnect/retry path.
inline constexpr const char *kNetAccept = "net.accept";
inline constexpr const char *kNetRead = "net.read";
inline constexpr const char *kNetWrite = "net.write";
// Parallel index population (src/index/index_builder): firing fails the
// build after the scan; CREATE INDEX must surface the error and drop the
// half-built index from the catalog.
inline constexpr const char *kIndexBuild = "index.build";
// Replication (src/repl): `repl.ship` fires on the primary's batch-read
// path (the follower sees a fetch error — a partitioned/unreachable
// primary), `repl.apply` on the follower's apply path (the batch must be
// retried without double-applying). `net.connect` fires in Client::Dial
// before any socket work — a refused/partitioned endpoint.
inline constexpr const char *kReplShip = "repl.ship";
inline constexpr const char *kReplApply = "repl.apply";
inline constexpr const char *kNetConnect = "net.connect";
// Disk-backed table heap (src/storage/disk_manager): `page.read` fires on
// page fetch (surfaces an I/O error to the scan), `page.write` on page
// writeback — arm with `torn` to simulate a crash mid-write leaving a
// partial page whose checksum must fail on the next read.
inline constexpr const char *kPageRead = "page.read";
inline constexpr const char *kPageWrite = "page.write";
}  // namespace fault_point

/// What an armed point does when it fires.
enum class FaultAction : uint8_t {
  kError,      ///< the instrumented call surfaces an error Status
  kThrow,      ///< the instrumented call throws InjectedFault
  kTornWrite,  ///< I/O writes only `torn_fraction` of its bytes (simulated
               ///< crash mid-write), then surfaces an error
  kDelay,      ///< the call is stalled for `delay_us`, then proceeds
               ///< normally (slow link / stalled flush, not a hard failure)
};

/// Exception type for FaultAction::kThrow.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string &what) : std::runtime_error(what) {}
};

/// How an armed point decides to fire on each hit.
struct FaultSpec {
  FaultAction action = FaultAction::kError;
  /// Per-hit fire probability (1.0 = every eligible hit). Evaluated with the
  /// injector's seeded RNG, so sequences replay deterministically.
  double probability = 1.0;
  /// Skip the first N hits (fire starting on hit N+1). Combined with
  /// probability: eligibility starts after N hits.
  uint64_t after_hits = 0;
  /// Stop firing after this many fires; < 0 means unlimited.
  int64_t max_fires = -1;
  /// For kTornWrite: fraction of the payload actually written.
  double torn_fraction = 0.5;
  /// For kDelay: stall duration in microseconds.
  int64_t delay_us = 1000;
  std::string message = "injected fault";
};

/// The decision returned to the instrumented call site.
struct FaultCheck {
  bool fire = false;
  /// A kDelay fire already slept inside Hit() and reports `fire == false`
  /// (the call proceeds normally); this flag records that it happened.
  bool delayed = false;
  FaultAction action = FaultAction::kError;
  double torn_fraction = 0.5;
  const char *message = "";  ///< valid until the point is disarmed/reset

  /// Convenience: the Status an erroring call site should surface.
  Status ToStatus(const std::string &point) const {
    return Status::IoError("fault '" + point + "': " + message);
  }
};

class FaultInjector {
 public:
  /// The process-wide instance. On first access, arms any points described
  /// by the MB2_FAULTS environment variable (see ArmFromSpec grammar).
  static FaultInjector &Instance();
  MB2_DISALLOW_COPY_AND_MOVE(FaultInjector);

  /// True when at least one point is armed. Call sites use this to skip the
  /// map lookup entirely in the common case.
  bool Armed() const { return armed_points_.load(std::memory_order_relaxed) > 0; }

  void Arm(const std::string &point, FaultSpec spec);
  void Disarm(const std::string &point);
  /// Disarms every point and clears all hit/fire counters.
  void Reset();
  /// Reseeds the probability RNG (deterministic replay of random schedules).
  void Seed(uint64_t seed);

  /// Registers one pass through `point` and decides whether the fault fires.
  /// Cheap when nothing is armed; counts hits only for armed points.
  FaultCheck Hit(const char *point);

  uint64_t HitCount(const std::string &point) const;
  uint64_t FireCount(const std::string &point) const;
  std::vector<std::string> ArmedPoints() const;

  /// Arms points from a spec string (the MB2_FAULTS grammar):
  ///   spec     := entry (';' entry)*
  ///   entry    := point '=' token (',' token)*
  ///   token    := 'p' FLOAT      per-hit probability
  ///             | 'n' INT        skip the first N hits
  ///             | 'x' INT        fire at most X times
  ///             | 'error' | 'throw' | 'torn' FLOAT? | 'delay' INT?  (µs)
  /// Example: MB2_FAULTS="wal.flush=p0.01;persistence.read=n2,x1,error"
  ///          MB2_FAULTS="repl.ship=p0.5,delay20000"    (slow link)
  Status ArmFromSpec(const std::string &spec);

 private:
  FaultInjector();

  struct PointState {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PointState> points_;
  Rng rng_{0xfa17ULL};
  std::atomic<int> armed_points_{0};
};

}  // namespace mb2
