#pragma once

/// \file checksum.h
/// CRC32 (IEEE 802.3 polynomial, the zlib/gzip variant) for detecting
/// corrupt or truncated persisted model files. Table-driven, one pass.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace mb2 {

/// Incremental CRC32: pass the previous return value as `crc` to continue a
/// running checksum (start with 0).
uint32_t Crc32(const void *data, size_t len, uint32_t crc = 0);

/// CRC32 of a file's contents, excluding the final `skip_trailing` bytes
/// (where a stored checksum footer lives). Errors on open failure or when the
/// file is shorter than `skip_trailing`.
Result<uint32_t> Crc32OfFile(const std::string &path, int64_t skip_trailing = 0);

}  // namespace mb2
