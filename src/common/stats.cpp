#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace mb2 {

double Mean(const std::vector<double> &xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double> &xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mu) * (x - mu);
  return sum / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double> &xs) { return std::sqrt(Variance(xs)); }

double TrimmedMean(std::vector<double> xs, double trim_fraction) {
  if (xs.empty()) return 0.0;
  MB2_ASSERT(trim_fraction >= 0.0 && trim_fraction < 0.5, "invalid trim fraction");
  std::sort(xs.begin(), xs.end());
  const size_t k = static_cast<size_t>(trim_fraction * static_cast<double>(xs.size()));
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = k; i + k < xs.size(); i++) {
    sum += xs[i];
    count++;
  }
  if (count == 0) return Mean(xs);
  return sum / static_cast<double>(count);
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double AverageRelativeError(const std::vector<double> &actual,
                            const std::vector<double> &predicted) {
  MB2_ASSERT(actual.size() == predicted.size(), "size mismatch");
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < actual.size(); i++) {
    if (std::abs(actual[i]) < 1e-12) continue;
    sum += std::abs(actual[i] - predicted[i]) / std::abs(actual[i]);
    count++;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double AverageAbsoluteError(const std::vector<double> &actual,
                            const std::vector<double> &predicted) {
  MB2_ASSERT(actual.size() == predicted.size(), "size mismatch");
  if (actual.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); i++) sum += std::abs(actual[i] - predicted[i]);
  return sum / static_cast<double>(actual.size());
}

}  // namespace mb2
