#pragma once

/// \file database.h
/// Convenience facade bundling the engine's subsystems (catalog, settings,
/// WAL, transactions, GC, execution, statistics) the way an embedded user
/// would consume them. All benches, examples, and workloads run through
/// this.

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "catalog/catalog.h"
#include "catalog/settings.h"
#include "exec/execution_engine.h"
#include "gc/garbage_collector.h"
#include "plan/cardinality_estimator.h"
#include "plan/cost_optimizer.h"
#include "sql/plan_cache.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace mb2 {

class ModelBot;

namespace ctrl {
class WorkloadStream;
}

class Database {
 public:
  struct Options {
    /// WAL device path; empty disables logging entirely.
    std::string wal_path;
    /// Heap file backing disk-storage tables. Empty = a per-instance temp
    /// file created on first disk-table DDL and removed at destruction.
    /// (Either way the file is truncated on open: the WAL is the durability
    /// story, and restart replays it into a fresh heap.)
    std::string heap_path;
    bool start_flusher = false;
    bool start_gc = false;
  };

  Database() : Database(Options()) {}
  explicit Database(Options options);
  ~Database();
  MB2_DISALLOW_COPY_AND_MOVE(Database);

  Catalog &catalog() { return catalog_; }
  SettingsManager &settings() { return settings_; }
  TransactionManager &txn_manager() { return *txn_manager_; }
  LogManager &log_manager() { return *log_manager_; }
  GarbageCollector &gc() { return *gc_; }
  ExecutionEngine &engine() { return *engine_; }
  CardinalityEstimator &estimator() { return *estimator_; }
  sql::PlanCache &plan_cache() { return *plan_cache_; }
  CostOptimizer &optimizer() { return *optimizer_; }

  /// The shared page cache for disk-storage tables, created on first use
  /// (DDL with WITH (storage=disk) routes here via the catalog's provider).
  /// Returns nullptr only when the heap file cannot be opened.
  BufferPool *EnsureBufferPool();
  /// Pool if already created, else nullptr (no side effects).
  BufferPool *buffer_pool() { return buffer_pool_.get(); }

  /// Serving hook: attach trained behavior models so the optimizer can
  /// price plan candidates (optimizer_mode = 1). Null detaches.
  void set_model_bot(ModelBot *bot) { optimizer_->set_model_bot(bot); }
  ModelBot *model_bot() const { return optimizer_->model_bot(); }

  /// Controller hook: when attached, sql::ExecuteSql reports every
  /// successfully executed query/DML statement (template key, SQL text,
  /// latency) so the autonomous controller can forecast the live workload.
  /// Null detaches. The stream must outlive its attachment.
  void set_workload_stream(ctrl::WorkloadStream *stream) {
    workload_stream_.store(stream, std::memory_order_release);
  }
  ctrl::WorkloadStream *workload_stream() const {
    return workload_stream_.load(std::memory_order_acquire);
  }

  /// Write admission. A replication follower serves reads only: SQL DML/DDL
  /// through Execute(sql) answers Status::Unavailable while set (the log
  /// apply path writes through the storage layer directly, below this
  /// gate). Promotion flips it atomically, so in-flight reads are never
  /// disturbed and the first post-promotion write is admitted exactly when
  /// the node starts logging for itself.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }
  void set_read_only(bool value) {
    read_only_.store(value, std::memory_order_release);
  }

  /// Executes a finalized plan in its own transaction.
  QueryResult Execute(const PlanNode &plan) { return engine_->ExecuteQuery(plan); }

  /// End-to-end convenience entry point: lexes, parses, binds, plans, and
  /// executes one SQL statement (DDL included; queries/DML run in their own
  /// transaction). The network service's SQL_QUERY opcode and embedded
  /// users share this path.
  Result<QueryResult> Execute(const std::string &sql);

 private:
  SettingsManager settings_;
  /// Declared before catalog_ purely for clarity; destruction is safe in
  /// any order because Table/TableHeap destructors never touch the pool.
  /// disk_manager_ must precede buffer_pool_ (the pool's destructor flushes
  /// through it).
  std::mutex buffer_pool_mutex_;
  std::unique_ptr<DiskManager> disk_manager_;
  std::unique_ptr<BufferPool> buffer_pool_;
  bool heap_is_temp_ = false;
  Catalog catalog_;
  std::unique_ptr<LogManager> log_manager_;
  std::unique_ptr<TransactionManager> txn_manager_;
  std::unique_ptr<GarbageCollector> gc_;
  std::unique_ptr<ExecutionEngine> engine_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<CostOptimizer> optimizer_;
  std::unique_ptr<sql::PlanCache> plan_cache_;
  Options options_;
  std::atomic<bool> read_only_{false};
  std::atomic<ctrl::WorkloadStream *> workload_stream_{nullptr};
};

}  // namespace mb2
