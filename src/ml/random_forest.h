#pragma once

/// \file random_forest.h
/// Bagged ensemble of multi-output CART trees with per-node feature
/// subsampling — MB2's configuration uses 50 estimators (Sec 8).

#include <memory>

#include "ml/decision_tree.h"

namespace mb2 {

class RandomForest : public Regressor {
 public:
  explicit RandomForest(uint32_t num_trees = 50, TreeParams params = DefaultParams(),
                        uint64_t seed = 42)
      : num_trees_(num_trees), params_(params), rng_(seed) {}

  static TreeParams DefaultParams() {
    TreeParams p;
    p.max_depth = 16;
    p.min_samples_leaf = 2;
    p.feature_fraction = 0.6;
    return p;
  }

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kRandomForest; }
  uint64_t SerializedBytes() const override;
  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;


 private:
  uint32_t num_trees_;
  TreeParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace mb2
