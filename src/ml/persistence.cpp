// Model persistence: tagged binary save/load for every regressor family.
// Format: [u8 algorithm][class-specific payload]. Shared helpers serialize
// matrices and standardizers.

#include "ml/gradient_boosting.h"
#include "ml/huber_regression.h"
#include "ml/kernel_regression.h"
#include "ml/linear_regression.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"
#include "ml/regressor.h"
#include "ml/svr.h"

namespace mb2 {

void SaveMatrix(const Matrix &m, BinaryWriter *writer) {
  writer->Put<uint64_t>(m.rows());
  writer->Put<uint64_t>(m.cols());
  writer->PutDoubles(m.data());
}

Matrix LoadMatrix(BinaryReader *reader) {
  const uint64_t rows = reader->Get<uint64_t>();
  const uint64_t cols = reader->Get<uint64_t>();
  const std::vector<double> data = reader->GetDoubles();
  // A payload whose element count disagrees with the dimensions is corrupt;
  // returning a zero matrix here would silently poison every prediction.
  if (!reader->ok() || data.size() != rows * cols) {
    reader->MarkCorrupt();
    return Matrix();
  }
  Matrix m(rows, cols);
  for (uint64_t r = 0; r < rows; r++) {
    for (uint64_t c = 0; c < cols; c++) m.At(r, c) = data[r * cols + c];
  }
  return m;
}

void SaveStandardizer(const Standardizer &s, BinaryWriter *writer) {
  writer->PutDoubles(s.mean());
  writer->PutDoubles(s.stddev());
}

Standardizer LoadStandardizer(BinaryReader *reader) {
  Standardizer s;
  std::vector<double> mean = reader->GetDoubles();
  std::vector<double> stddev = reader->GetDoubles();
  if (!reader->ok() || mean.size() != stddev.size()) {
    reader->MarkCorrupt();
    return s;
  }
  s.SetState(std::move(mean), std::move(stddev));
  return s;
}

void SaveRegressor(const Regressor &model, BinaryWriter *writer) {
  writer->Put<uint8_t>(static_cast<uint8_t>(model.algorithm()));
  model.Save(writer);
}

std::unique_ptr<Regressor> LoadRegressor(BinaryReader *reader) {
  const uint8_t tag = reader->Get<uint8_t>();
  if (!reader->ok() || tag >= kNumMlAlgorithms) return nullptr;
  auto model = CreateRegressor(static_cast<MlAlgorithm>(tag));
  model->LoadFrom(reader);
  if (!reader->ok()) return nullptr;
  return model;
}

// --- Linear / Huber ----------------------------------------------------------

void LinearRegression::Save(BinaryWriter *writer) const {
  SaveStandardizer(x_std_, writer);
  SaveMatrix(weights_, writer);
}

void LinearRegression::LoadFrom(BinaryReader *reader) {
  x_std_ = LoadStandardizer(reader);
  weights_ = LoadMatrix(reader);
}

void HuberRegression::Save(BinaryWriter *writer) const {
  SaveStandardizer(x_std_, writer);
  SaveMatrix(weights_, writer);
}

void HuberRegression::LoadFrom(BinaryReader *reader) {
  x_std_ = LoadStandardizer(reader);
  weights_ = LoadMatrix(reader);
}

// --- SVR ----------------------------------------------------------------------

void SupportVectorRegression::Save(BinaryWriter *writer) const {
  SaveStandardizer(x_std_, writer);
  SaveStandardizer(y_std_, writer);
  SaveMatrix(weights_, writer);
}

void SupportVectorRegression::LoadFrom(BinaryReader *reader) {
  x_std_ = LoadStandardizer(reader);
  y_std_ = LoadStandardizer(reader);
  weights_ = LoadMatrix(reader);
}

// --- Kernel ---------------------------------------------------------------------

void KernelRegression::Save(BinaryWriter *writer) const {
  writer->Put<double>(bandwidth_);
  SaveStandardizer(x_std_, writer);
  SaveMatrix(x_, writer);
  SaveMatrix(y_, writer);
}

void KernelRegression::LoadFrom(BinaryReader *reader) {
  bandwidth_ = reader->Get<double>();
  x_std_ = LoadStandardizer(reader);
  x_ = LoadMatrix(reader);
  y_ = LoadMatrix(reader);
  BuildSupportColumns();
}

// --- Decision tree ----------------------------------------------------------------

namespace {
// High bit on the node count marks the flattened-leaf format. Legacy counts
// were always rejected above 1<<28, so the flag can never collide with a
// valid old-format header.
constexpr uint64_t kFlatTreeFormatFlag = 1ull << 63;
}  // namespace

void DecisionTree::Save(BinaryWriter *writer) const {
  writer->Put<uint64_t>(nodes_.size() | kFlatTreeFormatFlag);
  for (const Node &node : nodes_) {
    writer->Put<int32_t>(node.feature);
    writer->Put<double>(node.threshold);
    writer->Put<int32_t>(node.left);
    writer->Put<int32_t>(node.right);
    writer->Put<int32_t>(node.leaf_offset);
  }
  writer->Put<uint64_t>(leaf_width_);
  writer->PutDoubles(leaf_values_);
}

void DecisionTree::LoadFrom(BinaryReader *reader) {
  const uint64_t header = reader->Get<uint64_t>();
  const bool flat = (header & kFlatTreeFormatFlag) != 0;
  const uint64_t n = header & ~kFlatTreeFormatFlag;
  if (!reader->ok() || n > (1ull << 28)) return;
  nodes_.clear();
  nodes_.reserve(n);
  leaf_values_.clear();
  leaf_width_ = 0;
  if (flat) {
    for (uint64_t i = 0; i < n && reader->ok(); i++) {
      Node node;
      node.feature = reader->Get<int32_t>();
      node.threshold = reader->Get<double>();
      node.left = reader->Get<int32_t>();
      node.right = reader->Get<int32_t>();
      node.leaf_offset = reader->Get<int32_t>();
      nodes_.push_back(node);
    }
    leaf_width_ = reader->Get<uint64_t>();
    leaf_values_ = reader->GetDoubles();
    // Validate every leaf offset against the pool so a corrupt payload can't
    // produce out-of-bounds reads at predict time.
    for (const Node &node : nodes_) {
      if (node.feature >= 0) continue;
      if (node.leaf_offset < 0 ||
          static_cast<uint64_t>(node.leaf_offset) + leaf_width_ >
              leaf_values_.size()) {
        reader->MarkCorrupt();
        return;
      }
    }
    return;
  }
  // Legacy format: each node carried its own leaf vector. Fold the vectors
  // into the contiguous pool on the way in.
  for (uint64_t i = 0; i < n && reader->ok(); i++) {
    Node node;
    node.feature = reader->Get<int32_t>();
    node.threshold = reader->Get<double>();
    node.left = reader->Get<int32_t>();
    node.right = reader->Get<int32_t>();
    const std::vector<double> leaf = reader->GetDoubles();
    if (!leaf.empty()) {
      node.leaf_offset = static_cast<int32_t>(leaf_values_.size());
      leaf_values_.insert(leaf_values_.end(), leaf.begin(), leaf.end());
      leaf_width_ = leaf.size();
    } else if (node.feature < 0) {
      node.leaf_offset = 0;  // zero-width leaf (degenerate 0-output tree)
    }
    nodes_.push_back(node);
  }
}

// --- Ensembles ----------------------------------------------------------------------

void RandomForest::Save(BinaryWriter *writer) const {
  writer->Put<uint32_t>(static_cast<uint32_t>(trees_.size()));
  for (const auto &tree : trees_) tree->Save(writer);
}

void RandomForest::LoadFrom(BinaryReader *reader) {
  const uint32_t n = reader->Get<uint32_t>();
  trees_.clear();
  for (uint32_t i = 0; i < n && reader->ok(); i++) {
    auto tree = std::make_unique<DecisionTree>();
    tree->LoadFrom(reader);
    trees_.push_back(std::move(tree));
  }
}

void GradientBoosting::Save(BinaryWriter *writer) const {
  writer->Put<double>(learning_rate_);
  writer->PutDoubles(base_);
  writer->Put<uint32_t>(static_cast<uint32_t>(trees_.size()));
  for (const auto &tree : trees_) tree->Save(writer);
}

void GradientBoosting::LoadFrom(BinaryReader *reader) {
  learning_rate_ = reader->Get<double>();
  base_ = reader->GetDoubles();
  const uint32_t n = reader->Get<uint32_t>();
  trees_.clear();
  for (uint32_t i = 0; i < n && reader->ok(); i++) {
    auto tree = std::make_unique<DecisionTree>();
    tree->LoadFrom(reader);
    trees_.push_back(std::move(tree));
  }
}

// --- Neural network -------------------------------------------------------------------

void NeuralNetwork::Save(BinaryWriter *writer) const {
  SaveStandardizer(x_std_, writer);
  SaveStandardizer(y_std_, writer);
  writer->Put<uint32_t>(static_cast<uint32_t>(layers_.size()));
  for (const Layer &layer : layers_) {
    writer->Put<uint64_t>(layer.in);
    writer->Put<uint64_t>(layer.out);
    writer->PutDoubles(layer.w);
    writer->PutDoubles(layer.b);
  }
}

void NeuralNetwork::LoadFrom(BinaryReader *reader) {
  x_std_ = LoadStandardizer(reader);
  y_std_ = LoadStandardizer(reader);
  const uint32_t n = reader->Get<uint32_t>();
  layers_.clear();
  for (uint32_t i = 0; i < n && reader->ok(); i++) {
    Layer layer;
    layer.in = reader->Get<uint64_t>();
    layer.out = reader->Get<uint64_t>();
    layer.w = reader->GetDoubles();
    layer.b = reader->GetDoubles();
    layers_.push_back(std::move(layer));
  }
  BuildBatchWeights();
}

}  // namespace mb2
