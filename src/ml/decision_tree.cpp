#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace mb2 {

void DecisionTree::Fit(const Matrix &x, const Matrix &y) {
  std::vector<size_t> rows(x.rows());
  for (size_t i = 0; i < rows.size(); i++) rows[i] = i;
  FitRows(x, y, rows);
}

void DecisionTree::FitRows(const Matrix &x, const Matrix &y,
                           const std::vector<size_t> &rows) {
  nodes_.clear();
  leaf_values_.clear();
  const size_t k = y.cols();
  leaf_width_ = k;
  // Per-output scaling so the split criterion is scale-free.
  output_scale_.assign(k, 1.0);
  for (size_t j = 0; j < k; j++) {
    double mean = 0.0, var = 0.0;
    for (size_t r : rows) mean += y.At(r, j);
    mean /= std::max<size_t>(rows.size(), 1);
    for (size_t r : rows) {
      const double d = y.At(r, j) - mean;
      var += d * d;
    }
    var /= std::max<size_t>(rows.size(), 1);
    output_scale_[j] = var < 1e-18 ? 0.0 : 1.0 / var;
  }
  std::vector<size_t> mutable_rows = rows;
  Build(x, y, &mutable_rows, 0);
}

int32_t DecisionTree::MakeLeaf(const Matrix &y, const std::vector<size_t> &rows) {
  const int32_t offset = static_cast<int32_t>(leaf_values_.size());
  std::vector<double> mean(y.cols(), 0.0);
  for (size_t r : rows) {
    for (size_t j = 0; j < y.cols(); j++) mean[j] += y.At(r, j);
  }
  for (auto &m : mean) m /= std::max<size_t>(rows.size(), 1);
  leaf_values_.insert(leaf_values_.end(), mean.begin(), mean.end());
  return offset;
}

int32_t DecisionTree::Build(const Matrix &x, const Matrix &y,
                            std::vector<size_t> *rows, uint32_t depth) {
  const size_t n = rows->size();
  const size_t d = x.cols();
  const size_t k = y.cols();
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  if (depth >= params_.max_depth || n < 2 * params_.min_samples_leaf) {
    nodes_[node_id].leaf_offset = MakeLeaf(y, *rows);
    return node_id;
  }

  // Total sums for parent impurity bookkeeping.
  std::vector<double> total_sum(k, 0.0), total_sq(k, 0.0);
  for (size_t r : *rows) {
    for (size_t j = 0; j < k; j++) {
      const double v = y.At(r, j);
      total_sum[j] += v;
      total_sq[j] += v * v;
    }
  }
  auto impurity = [&](const std::vector<double> &sum,
                      const std::vector<double> &sq, double count) {
    // Scaled SSE: sum_j scale_j * (sq_j - sum_j^2 / count).
    if (count <= 0.0) return 0.0;
    double out = 0.0;
    for (size_t j = 0; j < k; j++) {
      out += output_scale_[j] * (sq[j] - sum[j] * sum[j] / count);
    }
    return out;
  };
  const double parent_impurity = impurity(total_sum, total_sq, static_cast<double>(n));

  // Candidate features (random subset for forests).
  std::vector<size_t> features(d);
  for (size_t i = 0; i < d; i++) features[i] = i;
  size_t n_features = d;
  if (params_.feature_fraction < 1.0) {
    rng_.Shuffle(&features);
    n_features = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(params_.feature_fraction *
                                         static_cast<double>(d))));
  }

  double best_gain = 1e-12;
  int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, size_t>> sorted(n);
  std::vector<double> left_sum(k), left_sq(k);
  for (size_t fi = 0; fi < n_features; fi++) {
    const size_t f = features[fi];
    for (size_t i = 0; i < n; i++) {
      sorted[i] = {x.At((*rows)[i], f), (*rows)[i]};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    std::fill(left_sum.begin(), left_sum.end(), 0.0);
    std::fill(left_sq.begin(), left_sq.end(), 0.0);
    const size_t stride = std::max<size_t>(1, n / params_.max_thresholds);
    for (size_t i = 0; i + 1 < n; i++) {
      const size_t r = sorted[i].second;
      for (size_t j = 0; j < k; j++) {
        const double v = y.At(r, j);
        left_sum[j] += v;
        left_sq[j] += v * v;
      }
      // Only evaluate at stride boundaries where the value actually changes.
      if ((i + 1) % stride != 0) continue;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t nl = i + 1, nr = n - nl;
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) continue;
      std::vector<double> right_sum(k), right_sq(k);
      for (size_t j = 0; j < k; j++) {
        right_sum[j] = total_sum[j] - left_sum[j];
        right_sq[j] = total_sq[j] - left_sq[j];
      }
      const double gain = parent_impurity -
                          impurity(left_sum, left_sq, static_cast<double>(nl)) -
                          impurity(right_sum, right_sq, static_cast<double>(nr));
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(f);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_[node_id].leaf_offset = MakeLeaf(y, *rows);
    return node_id;
  }

  std::vector<size_t> left_rows, right_rows;
  left_rows.reserve(n);
  right_rows.reserve(n);
  for (size_t r : *rows) {
    if (x.At(r, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  rows->clear();
  rows->shrink_to_fit();

  const int32_t left_id = Build(x, y, &left_rows, depth + 1);
  const int32_t right_id = Build(x, y, &right_rows, depth + 1);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left_id;
  nodes_[node_id].right = right_id;
  return node_id;
}

const double *DecisionTree::FindLeaf(const double *row) const {
  int32_t id = 0;
  for (;;) {
    const Node &node = nodes_[static_cast<size_t>(id)];
    if (node.feature < 0) {
      return leaf_values_.data() + node.leaf_offset;
    }
    id = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                  : node.right;
  }
}

std::vector<double> DecisionTree::Predict(const std::vector<double> &x) const {
  MB2_ASSERT(!nodes_.empty(), "predict before fit");
  const double *leaf = FindLeaf(x.data());
  return std::vector<double>(leaf, leaf + leaf_width_);
}

void DecisionTree::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t n = x.rows(), k = leaf_width_;
  out->Resize(n, k);
  if (n == 0) return;
  MB2_ASSERT(!nodes_.empty(), "predict before fit");
  for (size_t r = 0; r < n; r++) {
    const double *leaf = FindLeaf(x.RowPtr(r));
    double *row = out->RowPtr(r);
    for (size_t j = 0; j < k; j++) row[j] = leaf[j];
  }
}

void DecisionTree::AccumulatePredictions(const Matrix &x, double scale,
                                         Matrix *out) const {
  const size_t n = x.rows(), k = leaf_width_;
  if (n == 0) return;
  MB2_ASSERT(!nodes_.empty(), "predict before fit");
  MB2_ASSERT(out->rows() == n && out->cols() == k,
             "accumulate shape mismatch");
  for (size_t r = 0; r < n; r++) {
    const double *leaf = FindLeaf(x.RowPtr(r));
    double *row = out->RowPtr(r);
    for (size_t j = 0; j < k; j++) row[j] += scale * leaf[j];
  }
}

}  // namespace mb2
