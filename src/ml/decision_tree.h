#pragma once

/// \file decision_tree.h
/// Multi-output CART regression tree. Splits minimize the summed per-output
/// SSE, with each output scaled by its global variance so labels with large
/// magnitudes (cycles) don't drown out small ones (block writes). Shared by
/// the random forest and gradient boosting ensembles.

#include "common/rng.h"
#include "ml/regressor.h"

namespace mb2 {

struct TreeParams {
  uint32_t max_depth = 12;
  size_t min_samples_leaf = 4;
  size_t max_thresholds = 32;    ///< split candidates evaluated per feature
  double feature_fraction = 1.0; ///< fraction of features tried per node
};

class DecisionTree : public Regressor {
 public:
  explicit DecisionTree(TreeParams params = {}, uint64_t seed = 42)
      : params_(params), rng_(seed) {}

  void Fit(const Matrix &x, const Matrix &y) override;
  /// Fits on a subset of rows (bootstrap support for ensembles).
  void FitRows(const Matrix &x, const Matrix &y, const std::vector<size_t> &rows);

  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  /// Adds scale × leaf(row) into *out (n × leaf_width) for every row of x.
  /// Lets the ensembles fold trees into one output buffer without
  /// materializing per-tree prediction matrices.
  void AccumulatePredictions(const Matrix &x, double scale, Matrix *out) const;

  MlAlgorithm algorithm() const override { return MlAlgorithm::kRandomForest; }
  uint64_t SerializedBytes() const override {
    return nodes_.size() * sizeof(Node) + NumLeafValueBytes() + 64;
  }

  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;

  size_t NumNodes() const { return nodes_.size(); }
  size_t leaf_width() const { return leaf_width_; }

 private:
  /// Flattened node: leaves index into the contiguous leaf_values_ pool
  /// instead of owning a heap vector, so batch traversal stays in-cache.
  struct Node {
    int32_t feature = -1;  ///< -1 = leaf
    double threshold = 0.0;
    int32_t left = -1, right = -1;
    int32_t leaf_offset = -1;  ///< element offset into leaf_values_ (leaves)
  };

  uint64_t NumLeafValueBytes() const { return leaf_values_.size() * sizeof(double); }
  int32_t Build(const Matrix &x, const Matrix &y, std::vector<size_t> *rows,
                uint32_t depth);
  /// Appends the mean target vector of rows to leaf_values_; returns its offset.
  int32_t MakeLeaf(const Matrix &y, const std::vector<size_t> &rows);
  /// Iterative root-to-leaf walk; returns the leaf payload pointer.
  const double *FindLeaf(const double *row) const;

  TreeParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<double> leaf_values_;  ///< contiguous pool, leaf_width_ per leaf
  size_t leaf_width_ = 0;            ///< values per leaf (= y.cols() at fit)
  std::vector<double> output_scale_;  ///< 1/var per output for split scoring
};

}  // namespace mb2
