#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

namespace mb2 {

Matrix Matrix::FromRows(const std::vector<std::vector<double>> &rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); r++) {
    MB2_ASSERT(rows[r].size() == m.cols_, "ragged rows");
    for (size_t c = 0; c < m.cols_; c++) m.At(r, c) = rows[r][c];
  }
  return m;
}

std::vector<double> Matrix::Col(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; r++) out[r] = At(r, c);
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t> &idx) const {
  Matrix out(idx.size(), cols_);
  for (size_t i = 0; i < idx.size(); i++) {
    const double *src = RowPtr(idx[i]);
    double *dst = out.RowPtr(i);
    for (size_t c = 0; c < cols_; c++) dst[c] = src[c];
  }
  return out;
}

void Matrix::AppendRow(const std::vector<double> &row) {
  AppendRow(row.data(), row.size());
}

void Matrix::AppendRow(const double *row, size_t n) {
  if (rows_ == 0 && cols_ == 0) cols_ = n;
  MB2_ASSERT(n == cols_, "row width mismatch");
  data_.insert(data_.end(), row, row + n);
  rows_++;
}

// Output-column tile width for the transpose-B kernel: the active B panel
// (kGemmColBlock × k doubles) stays cache-resident while a row of A streams
// past it. Blocking never touches the k dimension — each output element is
// still one ascending summation, which is what keeps batched predictions
// bit-identical to row-at-a-time ones.
static constexpr size_t kGemmColBlock = 64;

// The hot kernels vectorize across independent output lanes (columns of C,
// supports of a kernel row), never across a reduction, so every lane keeps
// the scalar summation order and SIMD results are bit-identical to scalar
// ones. This file is compiled -O3 -ffp-contract=off (see src/CMakeLists.txt):
// -O3 because GCC's -O2 very-cheap vectorizer cost model refuses these loops,
// and contraction off so an FMA-capable clone can never fuse a*b+c into bits
// that differ from the scalar baseline. MB2_SIMD_CLONES additionally emits a
// runtime-dispatched AVX2 clone per kernel (defined off for sanitizer builds,
// where ifunc dispatch is not reliably instrumented).
#if defined(MB2_SIMD_CLONES) && defined(__x86_64__)
#define MB2_HOT_KERNEL \
  __attribute__((target_clones("default", "avx2")))
// The Gaussian-kernel row also gets an AVX-512 clone: its exp loop is
// auto-vectorized scalar code that widens to zmm (halving µops per element),
// unlike the GEMM tiles whose explicit 32-byte vectors gain nothing from
// wider registers (and whose avx512f clone measured slower).
#define MB2_HOT_KERNEL_WIDE \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define MB2_HOT_KERNEL
#define MB2_HOT_KERNEL_WIDE
#endif

namespace {

// GCC vector extension: elementwise 4-double arithmetic with per-lane
// semantics identical to scalar code, lowered to SSE2 pairs on the baseline
// clone and single ymm ops on the AVX2 one. Used to hand-shape the GEMM
// microkernel — auto-vectorization of the same loop picks a shuffle-heavy
// SLP pattern that is several times slower.
typedef double V4d __attribute__((vector_size(32)));

inline V4d LoadV4(const double *p) {
  V4d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreV4(double *p, V4d v) { std::memcpy(p, &v, sizeof(v)); }
inline V4d SplatV4(double x) { return V4d{x, x, x, x}; }

/// Single-pass GEMM for small fixed m = 4·NT + NS: every output column of a
/// C row lives in a register accumulator (NT vector tiles plus NS scalar
/// tails) for one sweep over B, so B streams through the cache once instead
/// of once per column tile. Summation per element is still one ascending
/// k-run — bits match the generic kernel. always_inline so the body inherits
/// the ISA of whichever GemmKernel clone it is inlined into.
template <int NT, int NS>
__attribute__((always_inline)) inline void GemmRowsSmallM(
    const double *__restrict__ a, const double *__restrict__ b,
    double *__restrict__ c, size_t n, size_t k, size_t m, bool accumulate) {
  for (size_t i = 0; i < n; i++) {
    const double *arow = a + i * k;
    double *crow = c + i * m;
    V4d acc[NT > 0 ? NT : 1];
    double tail[NS > 0 ? NS : 1];
    for (int t = 0; t < NT; t++) {
      acc[t] = accumulate ? LoadV4(crow + 4 * t) : SplatV4(0.0);
    }
    for (int u = 0; u < NS; u++) {
      tail[u] = accumulate ? crow[4 * NT + u] : 0.0;
    }
    const double *bp = b;
    for (size_t kk = 0; kk < k; kk++, bp += m) {
      const double aik = arow[kk];
      const V4d av = SplatV4(aik);
      for (int t = 0; t < NT; t++) acc[t] += av * LoadV4(bp + 4 * t);
      for (int u = 0; u < NS; u++) tail[u] += aik * bp[4 * NT + u];
    }
    for (int t = 0; t < NT; t++) StoreV4(crow + 4 * t, acc[t]);
    for (int u = 0; u < NS; u++) crow[4 * NT + u] = tail[u];
  }
}

}  // namespace

MB2_HOT_KERNEL
void GemmKernel(const double *__restrict__ a, const double *__restrict__ b,
                double *__restrict__ c, size_t n, size_t k, size_t m,
                bool accumulate) {
  // The OU-model output widths that dominate this codebase (kNumLabels = 9
  // resource labels, 25-unit hidden layers) take the single-pass small-m
  // kernel: all columns accumulate in registers during one sweep of B, so B's
  // rows are touched once per C row instead of once per column tile plus once
  // per scalar remainder column.
  if (m == 9) return GemmRowsSmallM<2, 1>(a, b, c, n, k, m, accumulate);
  if (m == 25) return GemmRowsSmallM<6, 1>(a, b, c, n, k, m, accumulate);
  // Register-tiled: each C element lives in one of two vector accumulators
  // for the whole k-loop and is stored exactly once, instead of a
  // load/add/store round trip per k step. Lanes are output columns; each
  // lane still sees one ascending k-summation, so the bits match the naive
  // dot-product loop exactly.
  constexpr size_t kTile = 8;
  const size_t m_main = m - m % kTile;
  for (size_t i = 0; i < n; i++) {
    const double *arow = a + i * k;
    double *crow = c + i * m;
    for (size_t j0 = 0; j0 < m_main; j0 += kTile) {
      V4d acc0 = SplatV4(0.0), acc1 = SplatV4(0.0);
      if (accumulate) {
        acc0 = LoadV4(crow + j0);
        acc1 = LoadV4(crow + j0 + 4);
      }
      const double *bp = b + j0;
      for (size_t kk = 0; kk < k; kk++) {
        const V4d av = SplatV4(arow[kk]);
        acc0 += av * LoadV4(bp);
        acc1 += av * LoadV4(bp + 4);
        bp += m;
      }
      StoreV4(crow + j0, acc0);
      StoreV4(crow + j0 + 4, acc1);
    }
    for (size_t j = m_main; j < m; j++) {
      double sum = accumulate ? crow[j] : 0.0;
      for (size_t kk = 0; kk < k; kk++) sum += arow[kk] * b[kk * m + j];
      crow[j] = sum;
    }
  }
}

MB2_HOT_KERNEL
void ReluInPlace(double *__restrict__ p, size_t n) {
  for (size_t i = 0; i < n; i++) p[i] = p[i] < 0.0 ? 0.0 : p[i];
}

MB2_HOT_KERNEL
void GemmTransposeBKernel(const double *__restrict__ a,
                          const double *__restrict__ b, double *__restrict__ c,
                          size_t n, size_t k, size_t m, bool accumulate) {
  for (size_t j0 = 0; j0 < m; j0 += kGemmColBlock) {
    const size_t j1 = std::min(m, j0 + kGemmColBlock);
    for (size_t i = 0; i < n; i++) {
      const double *arow = a + i * k;
      double *crow = c + i * m;
      for (size_t j = j0; j < j1; j++) {
        const double *brow = b + j * k;
        double sum = accumulate ? crow[j] : 0.0;
        for (size_t kk = 0; kk < k; kk++) sum += arow[kk] * brow[kk];
        crow[j] = sum;
      }
    }
  }
}

void Gemm(const Matrix &a, const Matrix &b, Matrix *out, bool accumulate,
          size_t b_rows) {
  const size_t k = std::min(b.rows(), b_rows);
  MB2_ASSERT(a.cols() == k, "gemm inner dimension mismatch");
  MB2_ASSERT(out != &a && out != &b, "gemm output aliases an input");
  if (accumulate) {
    MB2_ASSERT(out->rows() == a.rows() && out->cols() == b.cols(),
               "gemm accumulate shape mismatch");
  } else {
    out->Resize(a.rows(), b.cols());
  }
  if (a.rows() == 0 || b.cols() == 0) return;
  GemmKernel(a.RowPtr(0), b.RowPtr(0), out->RowPtr(0), a.rows(), k, b.cols(),
             accumulate);
}

void GemmTransposeB(const Matrix &a, const Matrix &b, Matrix *out,
                    bool accumulate) {
  MB2_ASSERT(a.cols() == b.cols(), "gemm inner dimension mismatch");
  MB2_ASSERT(out != &a && out != &b, "gemm output aliases an input");
  if (accumulate) {
    MB2_ASSERT(out->rows() == a.rows() && out->cols() == b.rows(),
               "gemm accumulate shape mismatch");
  } else {
    out->Resize(a.rows(), b.rows());
  }
  if (a.rows() == 0 || b.rows() == 0) return;
  GemmTransposeBKernel(a.RowPtr(0), b.RowPtr(0), out->RowPtr(0), a.rows(),
                       a.cols(), b.rows(), accumulate);
}

MB2_HOT_KERNEL_WIDE
void GaussianKernelRow(const double *__restrict__ xt, size_t ns, size_t d,
                       const double *__restrict__ q, double inv_2h2,
                       double *__restrict__ dist2, double *__restrict__ w) {
  // Eight supports across two register accumulators: xt streams through
  // exactly once, each dist2 element is stored once, and the two accumulate
  // chains overlap the add latency. Lanes are supports; each lane
  // accumulates its (support − query)² terms in ascending feature order,
  // matching the row-at-a-time scan in KernelRegression::Predict bit for
  // bit (subtraction operands in the same order, same FastExp).
  const size_t ns_main = ns - ns % 8;
  for (size_t r0 = 0; r0 < ns_main; r0 += 8) {
    V4d acc0 = SplatV4(0.0), acc1 = SplatV4(0.0);
    for (size_t c = 0; c < d; c++) {
      const double *col = xt + c * ns + r0;
      const V4d qv = SplatV4(q[c]);
      const V4d dv0 = LoadV4(col) - qv;
      const V4d dv1 = LoadV4(col + 4) - qv;
      acc0 += dv0 * dv0;
      acc1 += dv1 * dv1;
    }
    StoreV4(dist2 + r0, acc0);
    StoreV4(dist2 + r0 + 4, acc1);
  }
  for (size_t r = ns_main; r < ns; r++) {
    double sum = 0.0;
    for (size_t c = 0; c < d; c++) {
      const double dlt = xt[c * ns + r] - q[c];
      sum += dlt * dlt;
    }
    dist2[r] = sum;
  }
  // Unrolled beyond the vectorizer's default ×2: FastExp's Horner chain is
  // latency-bound, and extra independent per-vector chains let the FMA-less
  // mul/add sequence overlap across iterations.
#pragma GCC unroll 8
  for (size_t r = 0; r < ns; r++) w[r] = FastExp(-dist2[r] * inv_2h2);
}

bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double> *x) {
  const size_t n = a.rows();
  MB2_ASSERT(a.cols() == n && b.size() == n, "not a square system");
  // Scale-relative singularity threshold: a pivot is "zero" only relative to
  // its column's largest input magnitude, so a well-conditioned system in
  // tiny units (all entries ~1e-13) still solves while a genuinely
  // rank-deficient one — whose pivots cancel to roundoff relative to the
  // column scale — is rejected.
  std::vector<double> col_scale(n, 0.0);
  for (size_t r = 0; r < n; r++) {
    for (size_t c = 0; c < n; c++) {
      col_scale[c] = std::max(col_scale[c], std::fabs(a.At(r, c)));
    }
  }
  for (size_t col = 0; col < n; col++) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; r++) {
      if (std::fabs(a.At(r, col)) > std::fabs(a.At(pivot, col))) pivot = r;
    }
    if (std::fabs(a.At(pivot, col)) < 1e-12 * col_scale[col] ||
        col_scale[col] == 0.0) {
      return false;
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; c++) std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double diag = a.At(col, col);
    for (size_t r = col + 1; r < n; r++) {
      const double factor = a.At(r, col) / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; c++) a.At(r, c) -= factor * a.At(col, c);
      b[r] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (size_t c = ri + 1; c < n; c++) sum -= a.At(ri, c) * (*x)[c];
    (*x)[ri] = sum / a.At(ri, ri);
  }
  return true;
}

void Standardizer::Fit(const Matrix &x) {
  const size_t n = x.rows(), d = x.cols();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 1.0);
  if (n == 0) {
    RebuildInverse();
    return;
  }
  for (size_t r = 0; r < n; r++) {
    for (size_t c = 0; c < d; c++) mean_[c] += x.At(r, c);
  }
  for (size_t c = 0; c < d; c++) mean_[c] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; r++) {
    for (size_t c = 0; c < d; c++) {
      const double dlt = x.At(r, c) - mean_[c];
      var[c] += dlt * dlt;
    }
  }
  for (size_t c = 0; c < d; c++) {
    const double s = std::sqrt(var[c] / static_cast<double>(n));
    stddev_[c] = s < 1e-12 ? 1.0 : s;
  }
  RebuildInverse();
}

std::vector<double> Standardizer::Transform(const std::vector<double> &row) const {
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); c++) {
    out[c] = (row[c] - mean_[c]) * inv_stddev_[c];
  }
  return out;
}

Matrix Standardizer::TransformAll(const Matrix &x) const {
  Matrix out;
  TransformAllInto(x, &out);
  return out;
}

void Standardizer::TransformAllInto(const Matrix &x, Matrix *out) const {
  out->Resize(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); r++) {
    const double *src = x.RowPtr(r);
    double *dst = out->RowPtr(r);
    for (size_t c = 0; c < x.cols(); c++) {
      dst[c] = (src[c] - mean_[c]) * inv_stddev_[c];
    }
  }
}

std::vector<double> Standardizer::InverseTransform(
    const std::vector<double> &row) const {
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); c++) out[c] = row[c] * stddev_[c] + mean_[c];
  return out;
}

void Standardizer::InverseTransformInPlace(Matrix *m) const {
  for (size_t r = 0; r < m->rows(); r++) {
    double *row = m->RowPtr(r);
    for (size_t c = 0; c < m->cols(); c++) {
      row[c] = row[c] * stddev_[c] + mean_[c];
    }
  }
}

}  // namespace mb2
