#include "ml/matrix.h"

#include <cmath>

namespace mb2 {

Matrix Matrix::FromRows(const std::vector<std::vector<double>> &rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); r++) {
    MB2_ASSERT(rows[r].size() == m.cols_, "ragged rows");
    for (size_t c = 0; c < m.cols_; c++) m.At(r, c) = rows[r][c];
  }
  return m;
}

std::vector<double> Matrix::Col(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; r++) out[r] = At(r, c);
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t> &idx) const {
  Matrix out(idx.size(), cols_);
  for (size_t i = 0; i < idx.size(); i++) {
    const double *src = RowPtr(idx[i]);
    double *dst = out.RowPtr(i);
    for (size_t c = 0; c < cols_; c++) dst[c] = src[c];
  }
  return out;
}

void Matrix::AppendRow(const std::vector<double> &row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  MB2_ASSERT(row.size() == cols_, "row width mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  rows_++;
}

bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double> *x) {
  const size_t n = a.rows();
  MB2_ASSERT(a.cols() == n && b.size() == n, "not a square system");
  for (size_t col = 0; col < n; col++) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; r++) {
      if (std::fabs(a.At(r, col)) > std::fabs(a.At(pivot, col))) pivot = r;
    }
    if (std::fabs(a.At(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; c++) std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double diag = a.At(col, col);
    for (size_t r = col + 1; r < n; r++) {
      const double factor = a.At(r, col) / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; c++) a.At(r, c) -= factor * a.At(col, c);
      b[r] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (size_t c = ri + 1; c < n; c++) sum -= a.At(ri, c) * (*x)[c];
    (*x)[ri] = sum / a.At(ri, ri);
  }
  return true;
}

void Standardizer::Fit(const Matrix &x) {
  const size_t n = x.rows(), d = x.cols();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 1.0);
  if (n == 0) return;
  for (size_t r = 0; r < n; r++) {
    for (size_t c = 0; c < d; c++) mean_[c] += x.At(r, c);
  }
  for (size_t c = 0; c < d; c++) mean_[c] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; r++) {
    for (size_t c = 0; c < d; c++) {
      const double dlt = x.At(r, c) - mean_[c];
      var[c] += dlt * dlt;
    }
  }
  for (size_t c = 0; c < d; c++) {
    const double s = std::sqrt(var[c] / static_cast<double>(n));
    stddev_[c] = s < 1e-12 ? 1.0 : s;
  }
}

std::vector<double> Standardizer::Transform(const std::vector<double> &row) const {
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); c++) out[c] = (row[c] - mean_[c]) / stddev_[c];
  return out;
}

Matrix Standardizer::TransformAll(const Matrix &x) const {
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); r++) {
    for (size_t c = 0; c < x.cols(); c++) {
      out.At(r, c) = (x.At(r, c) - mean_[c]) / stddev_[c];
    }
  }
  return out;
}

std::vector<double> Standardizer::InverseTransform(
    const std::vector<double> &row) const {
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); c++) out[c] = row[c] * stddev_[c] + mean_[c];
  return out;
}

}  // namespace mb2
