#pragma once

/// \file kernel_regression.h
/// Nadaraya-Watson kernel regression with a Gaussian kernel over
/// standardized features. Non-parametric: keeps a (subsampled) copy of the
/// training set and predicts the kernel-weighted mean of neighbors.

#include "common/rng.h"
#include "ml/regressor.h"

namespace mb2 {

class KernelRegression : public Regressor {
 public:
  explicit KernelRegression(double bandwidth = 0.5, size_t max_points = 2000,
                            uint64_t seed = 42)
      : bandwidth_(bandwidth), max_points_(max_points), rng_(seed) {}

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kKernel; }
  uint64_t SerializedBytes() const override {
    return (x_.rows() * x_.cols() + y_.rows() * y_.cols()) * sizeof(double) + 64;
  }

  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;

 private:
  /// Rebuilds xt_ (the d × ns column-major copy of x_); called after Fit and
  /// LoadFrom so PredictBatch's distance/weight loops vectorize across
  /// supports.
  void BuildSupportColumns();

  double bandwidth_;
  size_t max_points_;
  Rng rng_;
  Standardizer x_std_;
  Matrix x_, y_;            ///< retained (standardized) training points
  std::vector<double> xt_;  ///< x_ transposed: feature c of support r at [c*ns+r]
};

}  // namespace mb2
