#include "ml/linear_regression.h"

namespace mb2 {

void LinearRegression::Fit(const Matrix &x, const Matrix &y) {
  const size_t n = x.rows(), d = x.cols(), k = y.cols();
  x_std_.Fit(x);
  const Matrix xs = x_std_.TransformAll(x);

  // Normal equations with bias: A = Z^T Z + λI where Z = [xs | 1].
  const size_t dim = d + 1;
  Matrix a(dim, dim);
  for (size_t r = 0; r < n; r++) {
    const double *row = xs.RowPtr(r);
    for (size_t i = 0; i < d; i++) {
      for (size_t j = i; j < d; j++) a.At(i, j) += row[i] * row[j];
      a.At(i, d) += row[i];
    }
  }
  for (size_t i = 0; i < d; i++) {
    for (size_t j = 0; j < i; j++) a.At(i, j) = a.At(j, i);
    a.At(d, i) = a.At(i, d);
  }
  a.At(d, d) = static_cast<double>(n);
  for (size_t i = 0; i < dim; i++) a.At(i, i) += l2_;

  weights_ = Matrix(dim, k);
  for (size_t out = 0; out < k; out++) {
    std::vector<double> b(dim, 0.0);
    for (size_t r = 0; r < n; r++) {
      const double target = y.At(r, out);
      const double *row = xs.RowPtr(r);
      for (size_t i = 0; i < d; i++) b[i] += row[i] * target;
      b[d] += target;
    }
    std::vector<double> w;
    if (SolveLinearSystem(a, b, &w)) {
      for (size_t i = 0; i < dim; i++) weights_.At(i, out) = w[i];
    }
  }
}

std::vector<double> LinearRegression::Predict(const std::vector<double> &x) const {
  const std::vector<double> xs = x_std_.Transform(x);
  const size_t d = xs.size(), k = weights_.cols();
  std::vector<double> out(k, 0.0);
  for (size_t j = 0; j < k; j++) {
    double sum = weights_.At(d, j);  // bias
    for (size_t i = 0; i < d; i++) sum += weights_.At(i, j) * xs[i];
    out[j] = sum;
  }
  return out;
}

void LinearRegression::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t n = x.rows(), k = weights_.cols();
  const size_t d = weights_.rows() == 0 ? 0 : weights_.rows() - 1;
  out->Resize(n, k);
  if (n == 0 || k == 0) return;
  MB2_ASSERT(x.cols() == d, "feature width mismatch");
  Matrix xs;
  x_std_.TransformAllInto(x, &xs);
  // Bias first, then the features in ascending order — the same summation
  // order as the row-at-a-time Predict, one GEMM for the whole batch.
  const double *bias = weights_.RowPtr(d);
  for (size_t r = 0; r < n; r++) {
    std::memcpy(out->RowPtr(r), bias, k * sizeof(double));
  }
  Gemm(xs, weights_, out, /*accumulate=*/true, /*b_rows=*/d);
}

}  // namespace mb2
