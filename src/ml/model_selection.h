#pragma once

/// \file model_selection.h
/// MB2's training procedure (Sec 6.4): for each OU dataset, split 80/20,
/// train every algorithm, pick the best by test error, then retrain the
/// winner on all available data.

#include <map>
#include <memory>
#include <vector>

#include "ml/regressor.h"

namespace mb2 {

struct TrainTestSplit {
  Matrix x_train, y_train, x_test, y_test;
};

TrainTestSplit SplitData(const Matrix &x, const Matrix &y,
                         double test_fraction = 0.2, uint64_t seed = 42);

/// Mean over output columns of the average relative error on (x, y),
/// skipping near-zero actuals (the paper's OU-model accuracy metric).
double AvgRelativeError(const Regressor &model, const Matrix &x, const Matrix &y);

/// Per-output-column relative errors (Fig 6's per-label breakdown).
std::vector<double> PerOutputRelativeError(const Regressor &model,
                                           const Matrix &x, const Matrix &y);

struct SelectionResult {
  MlAlgorithm best_algorithm = MlAlgorithm::kLinear;
  std::map<MlAlgorithm, double> test_errors;
  std::unique_ptr<Regressor> final_model;  ///< winner retrained on all data
};

/// Runs the full procedure over the given candidate algorithms.
SelectionResult SelectAndTrain(const Matrix &x, const Matrix &y,
                               const std::vector<MlAlgorithm> &algorithms,
                               uint64_t seed = 42);

/// All seven algorithms (the default candidate set).
std::vector<MlAlgorithm> AllAlgorithms();

}  // namespace mb2
