#pragma once

/// \file model_selection.h
/// MB2's training procedure (Sec 6.4): for each OU dataset, split 80/20,
/// train every algorithm, pick the best by test error, then retrain the
/// winner on all available data.

#include <map>
#include <memory>
#include <vector>

#include "ml/regressor.h"

namespace mb2 {

class ThreadPool;

struct TrainTestSplit {
  Matrix x_train, y_train, x_test, y_test;
};

TrainTestSplit SplitData(const Matrix &x, const Matrix &y,
                         double test_fraction = 0.2, uint64_t seed = 42);

/// Mean over output columns of the average relative error on (x, y),
/// skipping near-zero actuals (the paper's OU-model accuracy metric).
double AvgRelativeError(const Regressor &model, const Matrix &x, const Matrix &y);

/// Per-output-column relative errors (Fig 6's per-label breakdown).
std::vector<double> PerOutputRelativeError(const Regressor &model,
                                           const Matrix &x, const Matrix &y);

struct SelectionResult {
  MlAlgorithm best_algorithm = MlAlgorithm::kLinear;
  std::map<MlAlgorithm, double> test_errors;
  std::unique_ptr<Regressor> final_model;  ///< winner retrained on all data
};

/// Runs the full procedure over the given candidate algorithms. With a
/// pool, each candidate fits on its own worker; every candidate trains from
/// its own seeded regressor, so the result is bit-identical to the serial
/// path. Must not be called from a task running on the same pool (WaitAll
/// would deadlock).
SelectionResult SelectAndTrain(const Matrix &x, const Matrix &y,
                               const std::vector<MlAlgorithm> &algorithms,
                               uint64_t seed = 42, ThreadPool *pool = nullptr);

/// K-fold cross-validation: mean relative error per algorithm across folds.
/// Each (algorithm, fold) pair fits independently — in parallel when a pool
/// is given — with the fold model's seed derived deterministically from
/// (seed, fold), so parallel and serial runs produce identical errors.
std::map<MlAlgorithm, double> CrossValidate(
    const Matrix &x, const Matrix &y,
    const std::vector<MlAlgorithm> &algorithms, size_t k_folds = 5,
    uint64_t seed = 42, ThreadPool *pool = nullptr);

/// All seven algorithms (the default candidate set).
std::vector<MlAlgorithm> AllAlgorithms();

}  // namespace mb2
