#include "ml/svr.h"

#include <cmath>

namespace mb2 {

void SupportVectorRegression::Fit(const Matrix &x, const Matrix &y) {
  const size_t n = x.rows(), d = x.cols(), k = y.cols();
  x_std_.Fit(x);
  y_std_.Fit(y);
  const Matrix xs = x_std_.TransformAll(x);
  const Matrix ys = y_std_.TransformAll(y);
  const size_t dim = d + 1;
  weights_ = Matrix(dim, k);
  if (n == 0) return;

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; i++) order[i] = i;

  for (size_t out = 0; out < k; out++) {
    std::vector<double> w(dim, 0.0), w_avg(dim, 0.0);
    uint64_t t = 0;
    for (uint32_t epoch = 0; epoch < epochs_; epoch++) {
      rng_.Shuffle(&order);
      for (size_t oi = 0; oi < n; oi++) {
        const size_t r = order[oi];
        t++;
        const double lr = 1.0 / (l2_ * static_cast<double>(t) + 100.0);
        const double *row = xs.RowPtr(r);
        double pred = w[d];
        for (size_t i = 0; i < d; i++) pred += w[i] * row[i];
        const double resid = pred - ys.At(r, out);
        // Subgradient of the epsilon-insensitive loss.
        double g = 0.0;
        if (resid > epsilon_) g = 1.0;
        else if (resid < -epsilon_) g = -1.0;
        for (size_t i = 0; i < d; i++) {
          w[i] -= lr * (g * row[i] + l2_ * w[i]);
        }
        w[d] -= lr * g;
        for (size_t i = 0; i < dim; i++) {
          w_avg[i] += (w[i] - w_avg[i]) / static_cast<double>(t);
        }
      }
    }
    for (size_t i = 0; i < dim; i++) weights_.At(i, out) = w_avg[i];
  }
}

std::vector<double> SupportVectorRegression::Predict(
    const std::vector<double> &x) const {
  const std::vector<double> xs = x_std_.Transform(x);
  const size_t d = xs.size(), k = weights_.cols();
  std::vector<double> out(k, 0.0);
  for (size_t j = 0; j < k; j++) {
    double sum = weights_.At(d, j);
    for (size_t i = 0; i < d; i++) sum += weights_.At(i, j) * xs[i];
    out[j] = sum;
  }
  return y_std_.InverseTransform(out);
}

void SupportVectorRegression::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t n = x.rows(), k = weights_.cols();
  const size_t d = weights_.rows() == 0 ? 0 : weights_.rows() - 1;
  out->Resize(n, k);
  if (n == 0 || k == 0) return;
  MB2_ASSERT(x.cols() == d, "feature width mismatch");
  Matrix xs;
  x_std_.TransformAllInto(x, &xs);
  const double *bias = weights_.RowPtr(d);
  for (size_t r = 0; r < n; r++) {
    std::memcpy(out->RowPtr(r), bias, k * sizeof(double));
  }
  Gemm(xs, weights_, out, /*accumulate=*/true, /*b_rows=*/d);
  y_std_.InverseTransformInPlace(out);
}

}  // namespace mb2
