#pragma once

/// \file linear_regression.h
/// Multi-output ridge (L2-regularized least squares) regression, solved via
/// the normal equations. The simplest of MB2's model families; competitive
/// for near-linear OUs (arithmetic, log serialization).

#include "ml/regressor.h"

namespace mb2 {

class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(double l2 = 1e-6) : l2_(l2) {}

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kLinear; }
  uint64_t SerializedBytes() const override {
    return weights_.rows() * weights_.cols() * sizeof(double) + 64;
  }

  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;

  const Matrix &weights() const { return weights_; }

 protected:
  double l2_;
  Standardizer x_std_;
  Matrix weights_;  ///< (d+1) × k, last row is the bias
};

}  // namespace mb2
