#include "ml/kernel_regression.h"

#include <algorithm>
#include <cmath>

namespace mb2 {

void KernelRegression::Fit(const Matrix &x, const Matrix &y) {
  x_std_.Fit(x);
  const size_t n = x.rows();
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; i++) idx[i] = i;
  if (n > max_points_) {
    rng_.Shuffle(&idx);
    idx.resize(max_points_);
  }
  x_ = x_std_.TransformAll(x).SelectRows(idx);
  y_ = y.SelectRows(idx);
  BuildSupportColumns();
}

void KernelRegression::BuildSupportColumns() {
  const size_t ns = x_.rows(), d = x_.cols();
  xt_.resize(ns * d);
  for (size_t r = 0; r < ns; r++) {
    const double *row = x_.RowPtr(r);
    for (size_t c = 0; c < d; c++) xt_[c * ns + r] = row[c];
  }
}

std::vector<double> KernelRegression::Predict(const std::vector<double> &x) const {
  const std::vector<double> q = x_std_.Transform(x);
  const size_t n = x_.rows(), d = x_.cols(), k = y_.cols();
  std::vector<double> out(k, 0.0);
  if (n == 0) return out;

  const double inv_2h2 = 1.0 / (2.0 * bandwidth_ * bandwidth_ *
                                static_cast<double>(d));
  double weight_sum = 0.0;
  double best_dist = 1e300;
  size_t best_row = 0;
  for (size_t r = 0; r < n; r++) {
    const double *row = x_.RowPtr(r);
    double dist2 = 0.0;
    for (size_t c = 0; c < d; c++) {
      const double dlt = row[c] - q[c];
      dist2 += dlt * dlt;
    }
    if (dist2 < best_dist) {
      best_dist = dist2;
      best_row = r;
    }
    // FastExp (not std::exp) so the batched path's vectorized weight loop
    // produces the same bits — see GaussianKernelRow.
    const double w = FastExp(-dist2 * inv_2h2);
    weight_sum += w;
    for (size_t j = 0; j < k; j++) out[j] += w * y_.At(r, j);
  }
  if (weight_sum < 1e-30) return y_.Row(best_row);  // far from all data: 1-NN
  for (size_t j = 0; j < k; j++) out[j] /= weight_sum;
  return out;
}

void KernelRegression::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t nq = x.rows(), ns = x_.rows(), d = x_.cols(), k = y_.cols();
  out->Resize(nq, k);
  if (nq == 0) return;
  if (ns == 0) {
    for (size_t r = 0; r < nq; r++) {
      double *row = out->RowPtr(r);
      for (size_t j = 0; j < k; j++) row[j] = 0.0;
    }
    return;
  }
  MB2_ASSERT(x.cols() == d, "feature width mismatch");

  Matrix q;
  x_std_.TransformAllInto(x, &q);
  const double inv_2h2 = 1.0 / (2.0 * bandwidth_ * bandwidth_ *
                                static_cast<double>(d));

  // Process queries in blocks: materialize the kernel-weight tile (block × ns)
  // via GaussianKernelRow — vectorized across supports, but accumulating each
  // distance in ascending feature order and calling the same FastExp as the
  // single-row scan, so the weights match it bit for bit — then fold the tile
  // against y_ with one GEMM per block.
  constexpr size_t kQueryBlock = 64;
  std::vector<double> wbuf(std::min(kQueryBlock, nq) * ns);
  std::vector<double> dist2(ns);
  std::vector<double> wsum(kQueryBlock);
  std::vector<size_t> best(kQueryBlock);
  MB2_ASSERT(xt_.size() == ns * d, "support columns not built");
  for (size_t q0 = 0; q0 < nq; q0 += kQueryBlock) {
    const size_t qb = std::min(kQueryBlock, nq - q0);
    for (size_t qi = 0; qi < qb; qi++) {
      const double *qrow = q.RowPtr(q0 + qi);
      double *wrow = wbuf.data() + qi * ns;
      GaussianKernelRow(xt_.data(), ns, d, qrow, inv_2h2, dist2.data(), wrow);
      // Ascending scans: same accumulation order and same strict-< tie
      // breaking as the single-row loop.
      double weight_sum = 0.0, best_dist = 1e300;
      size_t best_row = 0;
      for (size_t r = 0; r < ns; r++) {
        if (dist2[r] < best_dist) {
          best_dist = dist2[r];
          best_row = r;
        }
        weight_sum += wrow[r];
      }
      wsum[qi] = weight_sum;
      best[qi] = best_row;
    }
    GemmKernel(wbuf.data(), y_.RowPtr(0), out->RowPtr(q0), qb, ns, k,
               /*accumulate=*/false);
    for (size_t qi = 0; qi < qb; qi++) {
      double *orow = out->RowPtr(q0 + qi);
      if (wsum[qi] < 1e-30) {
        const double *yrow = y_.RowPtr(best[qi]);
        for (size_t j = 0; j < k; j++) orow[j] = yrow[j];
      } else {
        for (size_t j = 0; j < k; j++) orow[j] /= wsum[qi];
      }
    }
  }
}

}  // namespace mb2
