#include "ml/kernel_regression.h"

#include <cmath>

namespace mb2 {

void KernelRegression::Fit(const Matrix &x, const Matrix &y) {
  x_std_.Fit(x);
  const size_t n = x.rows();
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; i++) idx[i] = i;
  if (n > max_points_) {
    rng_.Shuffle(&idx);
    idx.resize(max_points_);
  }
  x_ = x_std_.TransformAll(x).SelectRows(idx);
  y_ = y.SelectRows(idx);
}

std::vector<double> KernelRegression::Predict(const std::vector<double> &x) const {
  const std::vector<double> q = x_std_.Transform(x);
  const size_t n = x_.rows(), d = x_.cols(), k = y_.cols();
  std::vector<double> out(k, 0.0);
  if (n == 0) return out;

  const double inv_2h2 = 1.0 / (2.0 * bandwidth_ * bandwidth_ *
                                static_cast<double>(d));
  double weight_sum = 0.0;
  double best_dist = 1e300;
  size_t best_row = 0;
  for (size_t r = 0; r < n; r++) {
    const double *row = x_.RowPtr(r);
    double dist2 = 0.0;
    for (size_t c = 0; c < d; c++) {
      const double dlt = row[c] - q[c];
      dist2 += dlt * dlt;
    }
    if (dist2 < best_dist) {
      best_dist = dist2;
      best_row = r;
    }
    const double w = std::exp(-dist2 * inv_2h2);
    weight_sum += w;
    for (size_t j = 0; j < k; j++) out[j] += w * y_.At(r, j);
  }
  if (weight_sum < 1e-30) return y_.Row(best_row);  // far from all data: 1-NN
  for (size_t j = 0; j < k; j++) out[j] /= weight_sum;
  return out;
}

}  // namespace mb2
