#include "ml/gradient_boosting.h"

namespace mb2 {

void GradientBoosting::Fit(const Matrix &x, const Matrix &y) {
  trees_.clear();
  const size_t n = x.rows(), k = y.cols();
  base_.assign(k, 0.0);
  if (n == 0) return;
  for (size_t r = 0; r < n; r++) {
    for (size_t j = 0; j < k; j++) base_[j] += y.At(r, j);
  }
  for (auto &b : base_) b /= static_cast<double>(n);

  Matrix residual(n, k);
  for (size_t r = 0; r < n; r++) {
    for (size_t j = 0; j < k; j++) residual.At(r, j) = y.At(r, j) - base_[j];
  }

  for (uint32_t round = 0; round < rounds_; round++) {
    auto tree = std::make_unique<DecisionTree>(params_, rng_.Next());
    tree->Fit(x, residual);
    // r -= lr*p and r += (-lr)*p are the same IEEE operation, so the batched
    // accumulate reproduces the historical residuals bit-for-bit.
    tree->AccumulatePredictions(x, -learning_rate_, &residual);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> GradientBoosting::Predict(const std::vector<double> &x) const {
  std::vector<double> out = base_;
  for (const auto &tree : trees_) {
    const std::vector<double> p = tree->Predict(x);
    for (size_t j = 0; j < out.size(); j++) out[j] += learning_rate_ * p[j];
  }
  return out;
}

void GradientBoosting::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t n = x.rows(), k = base_.size();
  out->Resize(n, k);
  for (size_t r = 0; r < n; r++) {
    double *row = out->RowPtr(r);
    for (size_t j = 0; j < k; j++) row[j] = base_[j];
  }
  if (n == 0) return;
  for (const auto &tree : trees_) {
    tree->AccumulatePredictions(x, learning_rate_, out);
  }
}

uint64_t GradientBoosting::SerializedBytes() const {
  uint64_t bytes = 64 + base_.size() * sizeof(double);
  for (const auto &t : trees_) bytes += t->SerializedBytes();
  return bytes;
}

}  // namespace mb2
