#include "ml/neural_network.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace mb2 {

namespace {
constexpr double kBeta1 = 0.9;
constexpr double kBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
}  // namespace

void NeuralNetwork::Forward(const std::vector<double> &x,
                            std::vector<std::vector<double>> *activations) const {
  activations->clear();
  activations->push_back(x);
  for (size_t l = 0; l < layers_.size(); l++) {
    const Layer &layer = layers_[l];
    const std::vector<double> &in = activations->back();
    std::vector<double> out(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; o++) {
      double sum = layer.b[o];
      const double *w = layer.w.data() + o * layer.in;
      for (size_t i = 0; i < layer.in; i++) sum += w[i] * in[i];
      // ReLU on hidden layers, identity on the output layer.
      out[o] = (l + 1 < layers_.size() && sum < 0.0) ? 0.0 : sum;
    }
    activations->push_back(std::move(out));
  }
}

void NeuralNetwork::BuildBatchWeights() {
  for (Layer &layer : layers_) {
    if (layer.w.size() != layer.in * layer.out) {
      // Corrupt load (the reader flags it separately); leave wt empty rather
      // than index out of bounds.
      layer.wt.clear();
      continue;
    }
    layer.wt.resize(layer.in * layer.out);
    for (size_t o = 0; o < layer.out; o++) {
      for (size_t i = 0; i < layer.in; i++) {
        layer.wt[i * layer.out + o] = layer.w[o * layer.in + i];
      }
    }
  }
}

void NeuralNetwork::Fit(const Matrix &x, const Matrix &y) {
  const size_t n = x.rows(), d = x.cols(), k = y.cols();
  x_std_.Fit(x);
  y_std_.Fit(y);
  const Matrix xs = x_std_.TransformAll(x);
  const Matrix ys = y_std_.TransformAll(y);

  // Build layers: d -> hidden... -> k with He initialization.
  layers_.clear();
  std::vector<size_t> sizes = {d};
  sizes.insert(sizes.end(), hidden_.begin(), hidden_.end());
  sizes.push_back(k);
  for (size_t l = 0; l + 1 < sizes.size(); l++) {
    Layer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (auto &w : layer.w) w = rng_.Gaussian(0.0, scale);
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.out, 0.0);
    layer.vb.assign(layer.out, 0.0);
    layers_.push_back(std::move(layer));
  }
  if (n == 0) {
    BuildBatchWeights();
    return;
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; i++) order[i] = i;
  uint64_t step = 0;

  // Gradient accumulators, one per layer per batch.
  std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
  std::vector<std::vector<double>> activations;
  std::vector<std::vector<double>> deltas(layers_.size() + 1);

  for (uint32_t epoch = 0; epoch < epochs_; epoch++) {
    rng_.Shuffle(&order);
    for (size_t start = 0; start < n; start += batch_size_) {
      const size_t end = std::min(start + batch_size_, n);
      const double batch_n = static_cast<double>(end - start);
      for (size_t l = 0; l < layers_.size(); l++) {
        gw[l].assign(layers_[l].w.size(), 0.0);
        gb[l].assign(layers_[l].out, 0.0);
      }

      for (size_t bi = start; bi < end; bi++) {
        const size_t r = order[bi];
        Forward(xs.Row(r), &activations);

        // Output delta: squared loss derivative.
        std::vector<double> &out_act = activations.back();
        deltas[layers_.size()].assign(out_act.size(), 0.0);
        for (size_t j = 0; j < out_act.size(); j++) {
          deltas[layers_.size()][j] = 2.0 * (out_act[j] - ys.At(r, j)) /
                                      static_cast<double>(out_act.size());
        }

        // Backprop.
        for (size_t li = layers_.size(); li-- > 0;) {
          const Layer &layer = layers_[li];
          const std::vector<double> &in_act = activations[li];
          const std::vector<double> &delta_out = deltas[li + 1];
          std::vector<double> &delta_in = deltas[li];
          delta_in.assign(layer.in, 0.0);
          for (size_t o = 0; o < layer.out; o++) {
            const double dout = delta_out[o];
            if (dout == 0.0) continue;
            double *gwp = gw[li].data() + o * layer.in;
            const double *wp = layer.w.data() + o * layer.in;
            for (size_t i = 0; i < layer.in; i++) {
              gwp[i] += dout * in_act[i];
              delta_in[i] += dout * wp[i];
            }
            gb[li][o] += dout;
          }
          // ReLU derivative for the layer below (skip for the input).
          if (li > 0) {
            const std::vector<double> &act = activations[li];
            for (size_t i = 0; i < layer.in; i++) {
              if (act[i] <= 0.0) delta_in[i] = 0.0;
            }
          }
        }
      }

      // Adam update.
      step++;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      for (size_t l = 0; l < layers_.size(); l++) {
        Layer &layer = layers_[l];
        for (size_t i = 0; i < layer.w.size(); i++) {
          const double g = gw[l][i] / batch_n;
          layer.mw[i] = kBeta1 * layer.mw[i] + (1.0 - kBeta1) * g;
          layer.vw[i] = kBeta2 * layer.vw[i] + (1.0 - kBeta2) * g * g;
          layer.w[i] -= learning_rate_ * (layer.mw[i] / bc1) /
                        (std::sqrt(layer.vw[i] / bc2) + kAdamEps);
        }
        for (size_t o = 0; o < layer.out; o++) {
          const double g = gb[l][o] / batch_n;
          layer.mb[o] = kBeta1 * layer.mb[o] + (1.0 - kBeta1) * g;
          layer.vb[o] = kBeta2 * layer.vb[o] + (1.0 - kBeta2) * g * g;
          layer.b[o] -= learning_rate_ * (layer.mb[o] / bc1) /
                        (std::sqrt(layer.vb[o] / bc2) + kAdamEps);
        }
      }
    }
  }
  BuildBatchWeights();
}

std::vector<double> NeuralNetwork::Predict(const std::vector<double> &x) const {
  std::vector<std::vector<double>> activations;
  Forward(x_std_.Transform(x), &activations);
  return y_std_.InverseTransform(activations.back());
}

void NeuralNetwork::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t n = x.rows();
  if (layers_.empty()) {
    // Un-fitted network: Forward is the identity on the standardized input.
    x_std_.TransformAllInto(x, out);
    y_std_.InverseTransformInPlace(out);
    return;
  }
  const size_t k = layers_.back().out;
  out->Resize(n, k);
  if (n == 0) return;

  // Ping-pong activation buffers: each layer is one bias-init plus one
  // matrix-matrix multiply against the transposed (in × out) weight copy —
  // the layout whose inner loop runs across output neurons, which is the
  // vectorizable direction. The kernel starts each element from the bias and
  // accumulates inputs in ascending order — the same summation order as
  // Forward's per-row loop, so the bits match exactly.
  Matrix cur, next;
  x_std_.TransformAllInto(x, &cur);
  for (size_t l = 0; l < layers_.size(); l++) {
    const Layer &layer = layers_[l];
    MB2_ASSERT(cur.cols() == layer.in, "layer input width mismatch");
    MB2_ASSERT(layer.wt.size() == layer.w.size(), "batch weights not built");
    Matrix *dst = (l + 1 == layers_.size()) ? out : &next;
    dst->Resize(n, layer.out);
    for (size_t r = 0; r < n; r++) {
      std::memcpy(dst->RowPtr(r), layer.b.data(),
                  layer.out * sizeof(double));
    }
    GemmKernel(cur.RowPtr(0), layer.wt.data(), dst->RowPtr(0), n, layer.in,
               layer.out, /*accumulate=*/true);
    if (l + 1 < layers_.size()) {
      ReluInPlace(dst->RowPtr(0), n * layer.out);
      std::swap(cur, next);
    }
  }
  y_std_.InverseTransformInPlace(out);
}

uint64_t NeuralNetwork::SerializedBytes() const {
  uint64_t bytes = 128;
  for (const auto &layer : layers_) {
    bytes += (layer.w.size() + layer.b.size()) * sizeof(double);
  }
  return bytes;
}

}  // namespace mb2
