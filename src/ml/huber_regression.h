#pragma once

/// \file huber_regression.h
/// Huber-loss linear regression via iteratively reweighted least squares —
/// robust to the measurement outliers that short-running OUs produce.

#include "ml/linear_regression.h"

namespace mb2 {

class HuberRegression : public Regressor {
 public:
  explicit HuberRegression(double delta = 1.35, uint32_t iterations = 15)
      : delta_(delta), iterations_(iterations) {}

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kHuber; }
  uint64_t SerializedBytes() const override {
    return weights_.rows() * weights_.cols() * sizeof(double) + 64;
  }

  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;

 private:
  double delta_;
  uint32_t iterations_;
  Standardizer x_std_;
  Matrix weights_;  ///< (d+1) × k
};

}  // namespace mb2
