#pragma once

/// \file neural_network.h
/// Multilayer perceptron (2 hidden layers × 25 ReLU units — the paper's
/// configuration) trained with Adam on standardized inputs and outputs.

#include <vector>

#include "common/rng.h"
#include "ml/regressor.h"

namespace mb2 {

class NeuralNetwork : public Regressor {
 public:
  explicit NeuralNetwork(std::vector<size_t> hidden = {25, 25},
                         uint32_t epochs = 120, size_t batch_size = 32,
                         double learning_rate = 1e-3, uint64_t seed = 42)
      : hidden_(std::move(hidden)), epochs_(epochs), batch_size_(batch_size),
        learning_rate_(learning_rate), rng_(seed) {}

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kNeuralNetwork; }
  uint64_t SerializedBytes() const override;
  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;


 private:
  struct Layer {
    size_t in = 0, out = 0;
    std::vector<double> w;   // out × in
    std::vector<double> b;   // out
    std::vector<double> wt;  // in × out transposed copy for the batched path
    // Adam state
    std::vector<double> mw, vw, mb, vb;
  };

  void Forward(const std::vector<double> &x,
               std::vector<std::vector<double>> *activations) const;
  /// Rebuilds each layer's `wt` from `w`; called after Fit and LoadFrom so
  /// PredictBatch can use the column-contiguous (vectorizable) GEMM kernel.
  void BuildBatchWeights();

  std::vector<size_t> hidden_;
  uint32_t epochs_;
  size_t batch_size_;
  double learning_rate_;
  Rng rng_;
  Standardizer x_std_, y_std_;
  std::vector<Layer> layers_;
};

}  // namespace mb2
