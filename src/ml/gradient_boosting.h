#pragma once

/// \file gradient_boosting.h
/// Gradient boosting machine with multi-output regression trees fit to the
/// residual matrix (squared loss, so residuals ARE the negative gradients).

#include <memory>

#include "ml/decision_tree.h"

namespace mb2 {

class GradientBoosting : public Regressor {
 public:
  explicit GradientBoosting(uint32_t rounds = 80, double learning_rate = 0.1,
                            TreeParams params = DefaultParams(), uint64_t seed = 42)
      : rounds_(rounds), learning_rate_(learning_rate), params_(params), rng_(seed) {}

  static TreeParams DefaultParams() {
    TreeParams p;
    p.max_depth = 5;
    p.min_samples_leaf = 8;
    return p;
  }

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kGradientBoosting; }
  uint64_t SerializedBytes() const override;
  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;


 private:
  uint32_t rounds_;
  double learning_rate_;
  TreeParams params_;
  Rng rng_;
  std::vector<double> base_;  ///< initial prediction (target means)
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace mb2
