#pragma once

/// \file svr.h
/// Linear support-vector regression (epsilon-insensitive loss) trained with
/// averaged stochastic subgradient descent, one output at a time. Targets
/// are standardized internally so epsilon is scale-free.

#include "common/rng.h"
#include "ml/regressor.h"

namespace mb2 {

class SupportVectorRegression : public Regressor {
 public:
  explicit SupportVectorRegression(double epsilon = 0.05, double l2 = 1e-4,
                                   uint32_t epochs = 40, uint64_t seed = 42)
      : epsilon_(epsilon), l2_(l2), epochs_(epochs), rng_(seed) {}

  void Fit(const Matrix &x, const Matrix &y) override;
  std::vector<double> Predict(const std::vector<double> &x) const override;
  void PredictBatch(const Matrix &x, Matrix *out) const override;
  MlAlgorithm algorithm() const override { return MlAlgorithm::kSvr; }
  uint64_t SerializedBytes() const override {
    return weights_.rows() * weights_.cols() * sizeof(double) + 128;
  }

  void Save(BinaryWriter *writer) const override;
  void LoadFrom(BinaryReader *reader) override;

 private:
  double epsilon_, l2_;
  uint32_t epochs_;
  Rng rng_;
  Standardizer x_std_, y_std_;
  Matrix weights_;  ///< (d+1) × k
};

}  // namespace mb2
