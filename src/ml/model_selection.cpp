#include "ml/model_selection.h"

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/gradient_boosting.h"
#include "ml/huber_regression.h"
#include "ml/kernel_regression.h"
#include "ml/linear_regression.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

namespace mb2 {

const char *MlAlgorithmName(MlAlgorithm algo) {
  switch (algo) {
    case MlAlgorithm::kLinear: return "LinearRegression";
    case MlAlgorithm::kHuber: return "HuberRegression";
    case MlAlgorithm::kSvr: return "SVR";
    case MlAlgorithm::kKernel: return "KernelRegression";
    case MlAlgorithm::kRandomForest: return "RandomForest";
    case MlAlgorithm::kGradientBoosting: return "GradientBoosting";
    case MlAlgorithm::kNeuralNetwork: return "NeuralNetwork";
  }
  return "Unknown";
}

std::unique_ptr<Regressor> CreateRegressor(MlAlgorithm algo, uint64_t seed) {
  switch (algo) {
    case MlAlgorithm::kLinear: return std::make_unique<LinearRegression>();
    case MlAlgorithm::kHuber: return std::make_unique<HuberRegression>();
    case MlAlgorithm::kSvr:
      return std::make_unique<SupportVectorRegression>(0.05, 1e-4, 40, seed);
    case MlAlgorithm::kKernel:
      return std::make_unique<KernelRegression>(0.5, 2000, seed);
    case MlAlgorithm::kRandomForest:
      return std::make_unique<RandomForest>(50, RandomForest::DefaultParams(), seed);
    case MlAlgorithm::kGradientBoosting:
      return std::make_unique<GradientBoosting>(
          80, 0.1, GradientBoosting::DefaultParams(), seed);
    case MlAlgorithm::kNeuralNetwork:
      return std::make_unique<NeuralNetwork>(std::vector<size_t>{25, 25}, 120,
                                             32, 1e-3, seed);
  }
  return nullptr;
}

std::vector<MlAlgorithm> AllAlgorithms() {
  return {MlAlgorithm::kLinear,       MlAlgorithm::kHuber,
          MlAlgorithm::kSvr,          MlAlgorithm::kKernel,
          MlAlgorithm::kRandomForest, MlAlgorithm::kGradientBoosting,
          MlAlgorithm::kNeuralNetwork};
}

TrainTestSplit SplitData(const Matrix &x, const Matrix &y, double test_fraction,
                         uint64_t seed) {
  const size_t n = x.rows();
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; i++) idx[i] = i;
  Rng rng(seed);
  rng.Shuffle(&idx);
  const size_t n_test = static_cast<size_t>(test_fraction * static_cast<double>(n));
  std::vector<size_t> test_idx(idx.begin(), idx.begin() + n_test);
  std::vector<size_t> train_idx(idx.begin() + n_test, idx.end());
  TrainTestSplit split;
  split.x_train = x.SelectRows(train_idx);
  split.y_train = y.SelectRows(train_idx);
  split.x_test = x.SelectRows(test_idx);
  split.y_test = y.SelectRows(test_idx);
  return split;
}

std::vector<double> PerOutputRelativeError(const Regressor &model,
                                           const Matrix &x, const Matrix &y) {
  const size_t k = y.cols();
  std::vector<double> sums(k, 0.0);
  std::vector<size_t> counts(k, 0);
  Matrix pred;
  model.PredictBatch(x, &pred);
  for (size_t r = 0; r < x.rows(); r++) {
    const double *prow = pred.RowPtr(r);
    for (size_t j = 0; j < k; j++) {
      const double actual = y.At(r, j);
      if (std::fabs(actual) < 1e-9) continue;
      sums[j] += std::fabs(actual - prow[j]) / std::fabs(actual);
      counts[j]++;
    }
  }
  std::vector<double> out(k, 0.0);
  for (size_t j = 0; j < k; j++) {
    out[j] = counts[j] == 0 ? 0.0 : sums[j] / static_cast<double>(counts[j]);
  }
  return out;
}

double AvgRelativeError(const Regressor &model, const Matrix &x, const Matrix &y) {
  const std::vector<double> per_output = PerOutputRelativeError(model, x, y);
  double sum = 0.0;
  size_t counted = 0;
  for (double e : per_output) {
    sum += e;
    counted++;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

SelectionResult SelectAndTrain(const Matrix &x, const Matrix &y,
                               const std::vector<MlAlgorithm> &algorithms,
                               uint64_t seed, ThreadPool *pool) {
  SelectionResult result;
  const TrainTestSplit split = SplitData(x, y, 0.2, seed);

  // Each candidate trains from its own seeded regressor on the shared
  // read-only split, so the fits are order-independent; the winner is then
  // reduced in the caller's algorithm order, making the parallel result
  // bit-identical to the serial one.
  std::vector<double> errors(algorithms.size(), 0.0);
  auto fit_one = [&](size_t i) {
    auto model = CreateRegressor(algorithms[i], seed);
    model->Fit(split.x_train, split.y_train);
    errors[i] = AvgRelativeError(*model, split.x_test, split.y_test);
  };
  if (pool != nullptr) {
    for (size_t i = 0; i < algorithms.size(); i++) {
      pool->Submit([&fit_one, i] { fit_one(i); });
    }
    pool->WaitAll();
  } else {
    for (size_t i = 0; i < algorithms.size(); i++) fit_one(i);
  }

  double best_error = 1e300;
  for (size_t i = 0; i < algorithms.size(); i++) {
    result.test_errors[algorithms[i]] = errors[i];
    if (errors[i] < best_error) {
      best_error = errors[i];
      result.best_algorithm = algorithms[i];
    }
  }
  // Retrain the winner on everything (Sec 6.4).
  result.final_model = CreateRegressor(result.best_algorithm, seed);
  result.final_model->Fit(x, y);
  return result;
}

std::map<MlAlgorithm, double> CrossValidate(
    const Matrix &x, const Matrix &y,
    const std::vector<MlAlgorithm> &algorithms, size_t k_folds, uint64_t seed,
    ThreadPool *pool) {
  std::map<MlAlgorithm, double> out;
  const size_t n = x.rows();
  if (n == 0 || algorithms.empty()) return out;
  if (k_folds < 2) k_folds = 2;
  if (k_folds > n) k_folds = n;

  // One shuffled assignment shared by every algorithm (paired comparison).
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; i++) idx[i] = i;
  Rng rng(seed);
  rng.Shuffle(&idx);

  // Pre-build per-fold train/test matrices once; tasks read them only.
  struct Fold {
    Matrix x_train, y_train, x_test, y_test;
  };
  std::vector<Fold> folds(k_folds);
  for (size_t f = 0; f < k_folds; f++) {
    const size_t lo = f * n / k_folds, hi = (f + 1) * n / k_folds;
    std::vector<size_t> test_idx(idx.begin() + lo, idx.begin() + hi);
    std::vector<size_t> train_idx(idx.begin(), idx.begin() + lo);
    train_idx.insert(train_idx.end(), idx.begin() + hi, idx.end());
    folds[f].x_train = x.SelectRows(train_idx);
    folds[f].y_train = y.SelectRows(train_idx);
    folds[f].x_test = x.SelectRows(test_idx);
    folds[f].y_test = y.SelectRows(test_idx);
  }

  // Deterministic per-task seeding: the fold model's RNG depends only on
  // (seed, fold), never on scheduling order.
  std::vector<double> errors(algorithms.size() * k_folds, 0.0);
  auto fit_fold = [&](size_t a, size_t f) {
    const uint64_t fold_seed = seed + 0x9e3779b97f4a7c15ULL * (f + 1);
    auto model = CreateRegressor(algorithms[a], fold_seed);
    model->Fit(folds[f].x_train, folds[f].y_train);
    errors[a * k_folds + f] =
        AvgRelativeError(*model, folds[f].x_test, folds[f].y_test);
  };
  if (pool != nullptr) {
    for (size_t a = 0; a < algorithms.size(); a++) {
      for (size_t f = 0; f < k_folds; f++) {
        pool->Submit([&fit_fold, a, f] { fit_fold(a, f); });
      }
    }
    pool->WaitAll();
  } else {
    for (size_t a = 0; a < algorithms.size(); a++) {
      for (size_t f = 0; f < k_folds; f++) fit_fold(a, f);
    }
  }

  for (size_t a = 0; a < algorithms.size(); a++) {
    double sum = 0.0;
    for (size_t f = 0; f < k_folds; f++) sum += errors[a * k_folds + f];
    out[algorithms[a]] = sum / static_cast<double>(k_folds);
  }
  return out;
}

}  // namespace mb2
