#include "ml/model_selection.h"

#include <cmath>

#include "common/rng.h"
#include "ml/gradient_boosting.h"
#include "ml/huber_regression.h"
#include "ml/kernel_regression.h"
#include "ml/linear_regression.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

namespace mb2 {

const char *MlAlgorithmName(MlAlgorithm algo) {
  switch (algo) {
    case MlAlgorithm::kLinear: return "LinearRegression";
    case MlAlgorithm::kHuber: return "HuberRegression";
    case MlAlgorithm::kSvr: return "SVR";
    case MlAlgorithm::kKernel: return "KernelRegression";
    case MlAlgorithm::kRandomForest: return "RandomForest";
    case MlAlgorithm::kGradientBoosting: return "GradientBoosting";
    case MlAlgorithm::kNeuralNetwork: return "NeuralNetwork";
  }
  return "Unknown";
}

std::unique_ptr<Regressor> CreateRegressor(MlAlgorithm algo, uint64_t seed) {
  switch (algo) {
    case MlAlgorithm::kLinear: return std::make_unique<LinearRegression>();
    case MlAlgorithm::kHuber: return std::make_unique<HuberRegression>();
    case MlAlgorithm::kSvr:
      return std::make_unique<SupportVectorRegression>(0.05, 1e-4, 40, seed);
    case MlAlgorithm::kKernel:
      return std::make_unique<KernelRegression>(0.5, 2000, seed);
    case MlAlgorithm::kRandomForest:
      return std::make_unique<RandomForest>(50, RandomForest::DefaultParams(), seed);
    case MlAlgorithm::kGradientBoosting:
      return std::make_unique<GradientBoosting>(
          80, 0.1, GradientBoosting::DefaultParams(), seed);
    case MlAlgorithm::kNeuralNetwork:
      return std::make_unique<NeuralNetwork>(std::vector<size_t>{25, 25}, 120,
                                             32, 1e-3, seed);
  }
  return nullptr;
}

std::vector<MlAlgorithm> AllAlgorithms() {
  return {MlAlgorithm::kLinear,       MlAlgorithm::kHuber,
          MlAlgorithm::kSvr,          MlAlgorithm::kKernel,
          MlAlgorithm::kRandomForest, MlAlgorithm::kGradientBoosting,
          MlAlgorithm::kNeuralNetwork};
}

TrainTestSplit SplitData(const Matrix &x, const Matrix &y, double test_fraction,
                         uint64_t seed) {
  const size_t n = x.rows();
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; i++) idx[i] = i;
  Rng rng(seed);
  rng.Shuffle(&idx);
  const size_t n_test = static_cast<size_t>(test_fraction * static_cast<double>(n));
  std::vector<size_t> test_idx(idx.begin(), idx.begin() + n_test);
  std::vector<size_t> train_idx(idx.begin() + n_test, idx.end());
  TrainTestSplit split;
  split.x_train = x.SelectRows(train_idx);
  split.y_train = y.SelectRows(train_idx);
  split.x_test = x.SelectRows(test_idx);
  split.y_test = y.SelectRows(test_idx);
  return split;
}

std::vector<double> PerOutputRelativeError(const Regressor &model,
                                           const Matrix &x, const Matrix &y) {
  const size_t k = y.cols();
  std::vector<double> sums(k, 0.0);
  std::vector<size_t> counts(k, 0);
  for (size_t r = 0; r < x.rows(); r++) {
    const std::vector<double> pred = model.Predict(x.Row(r));
    for (size_t j = 0; j < k; j++) {
      const double actual = y.At(r, j);
      if (std::fabs(actual) < 1e-9) continue;
      sums[j] += std::fabs(actual - pred[j]) / std::fabs(actual);
      counts[j]++;
    }
  }
  std::vector<double> out(k, 0.0);
  for (size_t j = 0; j < k; j++) {
    out[j] = counts[j] == 0 ? 0.0 : sums[j] / static_cast<double>(counts[j]);
  }
  return out;
}

double AvgRelativeError(const Regressor &model, const Matrix &x, const Matrix &y) {
  const std::vector<double> per_output = PerOutputRelativeError(model, x, y);
  double sum = 0.0;
  size_t counted = 0;
  for (double e : per_output) {
    sum += e;
    counted++;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

SelectionResult SelectAndTrain(const Matrix &x, const Matrix &y,
                               const std::vector<MlAlgorithm> &algorithms,
                               uint64_t seed) {
  SelectionResult result;
  const TrainTestSplit split = SplitData(x, y, 0.2, seed);
  double best_error = 1e300;
  for (MlAlgorithm algo : algorithms) {
    auto model = CreateRegressor(algo, seed);
    model->Fit(split.x_train, split.y_train);
    const double err = AvgRelativeError(*model, split.x_test, split.y_test);
    result.test_errors[algo] = err;
    if (err < best_error) {
      best_error = err;
      result.best_algorithm = algo;
    }
  }
  // Retrain the winner on everything (Sec 6.4).
  result.final_model = CreateRegressor(result.best_algorithm, seed);
  result.final_model->Fit(x, y);
  return result;
}

}  // namespace mb2
