#include "ml/random_forest.h"

namespace mb2 {

void RandomForest::Fit(const Matrix &x, const Matrix &y) {
  trees_.clear();
  const size_t n = x.rows();
  for (uint32_t t = 0; t < num_trees_; t++) {
    auto tree = std::make_unique<DecisionTree>(params_, rng_.Next());
    std::vector<size_t> bootstrap(n);
    for (size_t i = 0; i < n; i++) {
      bootstrap[i] = static_cast<size_t>(rng_.Uniform(int64_t{0}, static_cast<int64_t>(n) - 1));
    }
    tree->FitRows(x, y, bootstrap);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::Predict(const std::vector<double> &x) const {
  MB2_ASSERT(!trees_.empty(), "predict before fit");
  std::vector<double> out = trees_[0]->Predict(x);
  for (size_t t = 1; t < trees_.size(); t++) {
    const std::vector<double> p = trees_[t]->Predict(x);
    for (size_t j = 0; j < out.size(); j++) out[j] += p[j];
  }
  for (auto &v : out) v /= static_cast<double>(trees_.size());
  return out;
}

void RandomForest::PredictBatch(const Matrix &x, Matrix *out) const {
  MB2_ASSERT(!trees_.empty(), "predict before fit");
  // Tree 0 fills the buffer, the rest accumulate into it — the same
  // per-element summation order as the single-row path.
  trees_[0]->PredictBatch(x, out);
  for (size_t t = 1; t < trees_.size(); t++) {
    trees_[t]->AccumulatePredictions(x, 1.0, out);
  }
  const size_t n = out->rows(), k = out->cols();
  const double inv = static_cast<double>(trees_.size());
  for (size_t r = 0; r < n; r++) {
    double *row = out->RowPtr(r);
    for (size_t j = 0; j < k; j++) row[j] /= inv;
  }
}

uint64_t RandomForest::SerializedBytes() const {
  uint64_t bytes = 64;
  for (const auto &t : trees_) bytes += t->SerializedBytes();
  return bytes;
}

}  // namespace mb2
