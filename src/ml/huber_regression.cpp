#include "ml/huber_regression.h"

#include <cmath>

namespace mb2 {

void HuberRegression::Fit(const Matrix &x, const Matrix &y) {
  const size_t n = x.rows(), d = x.cols(), k = y.cols();
  x_std_.Fit(x);
  const Matrix xs = x_std_.TransformAll(x);
  const size_t dim = d + 1;
  weights_ = Matrix(dim, k);

  for (size_t out = 0; out < k; out++) {
    std::vector<double> w(dim, 0.0);
    std::vector<double> sample_weight(n, 1.0);
    // Scale of this output: used to make delta meaningful across labels
    // with wildly different magnitudes.
    double scale = 0.0;
    for (size_t r = 0; r < n; r++) scale += std::fabs(y.At(r, out));
    scale = scale / std::max<size_t>(n, 1) + 1e-9;

    for (uint32_t iter = 0; iter < iterations_; iter++) {
      // Weighted least squares with the current sample weights.
      Matrix a(dim, dim);
      std::vector<double> b(dim, 0.0);
      for (size_t r = 0; r < n; r++) {
        const double sw = sample_weight[r];
        const double *row = xs.RowPtr(r);
        const double target = y.At(r, out);
        for (size_t i = 0; i < d; i++) {
          for (size_t j = i; j < d; j++) a.At(i, j) += sw * row[i] * row[j];
          a.At(i, d) += sw * row[i];
          b[i] += sw * row[i] * target;
        }
        a.At(d, d) += sw;
        b[d] += sw * target;
      }
      for (size_t i = 0; i < dim; i++) {
        for (size_t j = 0; j < i; j++) a.At(i, j) = a.At(j, i);
        a.At(i, i) += 1e-6;
      }
      if (!SolveLinearSystem(a, b, &w)) break;

      // Reweight by Huber psi: w_i = min(1, delta / |r_i / scale|).
      for (size_t r = 0; r < n; r++) {
        const double *row = xs.RowPtr(r);
        double pred = w[d];
        for (size_t i = 0; i < d; i++) pred += w[i] * row[i];
        const double resid = std::fabs(y.At(r, out) - pred) / scale;
        sample_weight[r] = resid <= delta_ ? 1.0 : delta_ / resid;
      }
    }
    for (size_t i = 0; i < dim; i++) weights_.At(i, out) = w[i];
  }
}

std::vector<double> HuberRegression::Predict(const std::vector<double> &x) const {
  const std::vector<double> xs = x_std_.Transform(x);
  const size_t d = xs.size(), k = weights_.cols();
  std::vector<double> out(k, 0.0);
  for (size_t j = 0; j < k; j++) {
    double sum = weights_.At(d, j);
    for (size_t i = 0; i < d; i++) sum += weights_.At(i, j) * xs[i];
    out[j] = sum;
  }
  return out;
}

void HuberRegression::PredictBatch(const Matrix &x, Matrix *out) const {
  const size_t n = x.rows(), k = weights_.cols();
  const size_t d = weights_.rows() == 0 ? 0 : weights_.rows() - 1;
  out->Resize(n, k);
  if (n == 0 || k == 0) return;
  MB2_ASSERT(x.cols() == d, "feature width mismatch");
  Matrix xs;
  x_std_.TransformAllInto(x, &xs);
  const double *bias = weights_.RowPtr(d);
  for (size_t r = 0; r < n; r++) {
    std::memcpy(out->RowPtr(r), bias, k * sizeof(double));
  }
  Gemm(xs, weights_, out, /*accumulate=*/true, /*b_rows=*/d);
}

}  // namespace mb2
