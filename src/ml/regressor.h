#pragma once

/// \file regressor.h
/// Common interface for MB2's seven regression algorithms (Sec 6.4). Every
/// model is multi-output: an OU-model predicts all nine labels jointly.

#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "ml/matrix.h"

namespace mb2 {

enum class MlAlgorithm : uint8_t {
  kLinear = 0,
  kHuber,
  kSvr,
  kKernel,
  kRandomForest,
  kGradientBoosting,
  kNeuralNetwork,
};

constexpr size_t kNumMlAlgorithms = 7;
const char *MlAlgorithmName(MlAlgorithm algo);

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on features X (n×d) and targets Y (n×k).
  virtual void Fit(const Matrix &x, const Matrix &y) = 0;

  /// Predicts the k-vector of targets for one feature row.
  virtual std::vector<double> Predict(const std::vector<double> &x) const = 0;

  /// Batched prediction: resizes *out to x.rows() × k and fills row r with
  /// Predict(x.Row(r)). Every implementation is required to be bit-identical
  /// to the row-at-a-time path (same summation order within each row) —
  /// batching changes throughput, never results. Handles 0-row batches.
  virtual void PredictBatch(const Matrix &x, Matrix *out) const = 0;

  /// Convenience wrapper over PredictBatch with a pre-sized output.
  Matrix PredictAll(const Matrix &x) const {
    Matrix out;
    PredictBatch(x, &out);
    return out;
  }

  virtual MlAlgorithm algorithm() const = 0;
  const char *Name() const { return MlAlgorithmName(algorithm()); }

  /// Approximate size of the persisted model (Table 2's model-size column).
  virtual uint64_t SerializedBytes() const = 0;

  /// Persists the fitted parameters (algorithm tag written by
  /// SaveRegressor, not here).
  virtual void Save(BinaryWriter *writer) const = 0;
  /// Restores parameters into a freshly constructed instance.
  virtual void LoadFrom(BinaryReader *reader) = 0;
};

/// Writes the algorithm tag + parameters.
void SaveRegressor(const Regressor &model, BinaryWriter *writer);
/// Reads the tag, constructs via CreateRegressor, restores parameters.
/// Returns null when the stream is corrupt.
std::unique_ptr<Regressor> LoadRegressor(BinaryReader *reader);

// Shared helpers for model state.
void SaveMatrix(const Matrix &m, BinaryWriter *writer);
Matrix LoadMatrix(BinaryReader *reader);
void SaveStandardizer(const Standardizer &s, BinaryWriter *writer);
Standardizer LoadStandardizer(BinaryReader *reader);

/// Factory with MB2's default hyperparameters (Sec 8: random forest with 50
/// estimators, NN with 2×25 neurons, GBM defaults scaled to our data sizes).
std::unique_ptr<Regressor> CreateRegressor(MlAlgorithm algo, uint64_t seed = 42);

}  // namespace mb2
