#pragma once

/// \file matrix.h
/// Dense row-major matrix plus the small linear-algebra kit the regressors
/// need (Gaussian-elimination solve, standardization) and the allocation-free
/// cache-blocked GEMM kernels the batched inference path is built on.
/// OU-model problems are tiny (≤ ~11 features), so the kernels favor
/// predictable summation order over peak FLOPs: for every output element the
/// inner reduction runs in ascending index order, which makes batched
/// predictions bit-identical to row-at-a-time ones.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace mb2 {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRows(const std::vector<std::vector<double>> &rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double &At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double *RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double *RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> Row(size_t r) const {
    return {RowPtr(r), RowPtr(r) + cols_};
  }
  std::vector<double> Col(size_t c) const;

  /// Returns the sub-matrix made of the given row indexes.
  Matrix SelectRows(const std::vector<size_t> &idx) const;

  /// Pre-allocates storage for `rows` × `cols` elements so subsequent
  /// AppendRow calls never reallocate. Does not change the shape.
  void Reserve(size_t rows, size_t cols) {
    data_.reserve(rows * cols);
    if (rows_ == 0 && cols_ == 0) cols_ = cols;
  }

  /// Sets the shape, reusing existing storage when capacity allows. Element
  /// values are unspecified afterwards (callers overwrite them); newly grown
  /// storage is zero-filled by the underlying vector.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void AppendRow(const std::vector<double> &row);
  /// Appends `n` doubles from a raw buffer as one row (no temporary vector).
  void AppendRow(const double *row, size_t n);

  const std::vector<double> &data() const { return data_; }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// C (n×m) = A (n×k) · B (k×m) over row-major raw buffers; with `accumulate`
/// the product is added into C's existing contents instead. Cache-blocked
/// over output columns only: for each C element the k-summation is a single
/// ascending run, so results match a naive dot-product loop bit for bit.
/// C must not alias A or B.
void GemmKernel(const double *a, const double *b, double *c, size_t n,
                size_t k, size_t m, bool accumulate);

/// C (n×m) = A (n×k) · Bᵀ where B is (m×k) row-major — the natural layout
/// for neural-network weight matrices (out × in). Same bit-identical
/// ascending k-summation guarantee as GemmKernel.
void GemmTransposeBKernel(const double *a, const double *b, double *c,
                          size_t n, size_t k, size_t m, bool accumulate);

/// Matrix-level GEMM: *out = A · B (or += with `accumulate`). `b_rows`
/// limits the inner dimension to the first `b_rows` rows of B, letting
/// callers treat a trailing bias row separately (linear-family weight
/// matrices store the bias as their last row). Resizes *out to
/// A.rows() × B.cols(); *out must not alias A or B.
void Gemm(const Matrix &a, const Matrix &b, Matrix *out,
          bool accumulate = false, size_t b_rows = SIZE_MAX);

/// *out = A · Bᵀ (or += with `accumulate`), B given row-major as (m×k).
void GemmTransposeB(const Matrix &a, const Matrix &b, Matrix *out,
                    bool accumulate = false);

/// Deterministic exp() replacement shared by the single-row and batched
/// kernel-regression paths. Branch-free (input clamped to ±708, range
/// reduction by the 1.5·2^52 shift trick, degree-9 Taylor on |r| ≤ ln2/2,
/// exponent-field scaling), so the compiler can evaluate it per SIMD lane
/// with exactly the scalar bit pattern — which is what keeps PredictBatch ==
/// Predict while still vectorizing. Accuracy ~1e-11 relative; the clamp
/// saturates at exp(±708) instead of reaching 0/inf, which for kernel
/// weights (arguments ≤ 0) is indistinguishable from underflow.
inline double FastExp(double x) {
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  constexpr double kInvLn2 = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double xl = x < -708.0 ? -708.0 : x;  // keep the exponent field
  const double xc = xl > 708.0 ? 708.0 : xl;  // from wrapping
  const double t = xc * kInvLn2 + kShift;
  const double n = t - kShift;  // round(xc / ln2)
  const double r = (xc - n * kLn2Hi) - n * kLn2Lo;
  double p = 1.0 / 362880.0;  // 1/9!
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  // 2^n assembled directly in the exponent field. The low 32 bits of the
  // shifted value hold round(x/ln2) in two's complement.
  int64_t bits;
  std::memcpy(&bits, &t, sizeof(bits));
  const int64_t pow_bits = (static_cast<int64_t>(static_cast<int32_t>(bits)) +
                            1023)
                           << 52;
  double scale;
  std::memcpy(&scale, &pow_bits, sizeof(scale));
  return p * scale;
}

/// Element-wise max(p[i], 0) in place, value-identical to the scalar ReLU in
/// NeuralNetwork::Forward (NaN passes through unchanged in both). Lives in
/// the vectorized-kernels file so the batched NN path gets a branch-free
/// SIMD loop.
void ReluInPlace(double *p, size_t n);

/// One query row of Gaussian-kernel weights against `ns` support points held
/// column-major (`xt` is d × ns: feature c of support r at xt[c*ns + r]).
/// Writes dist2[r] = Σ_c (support − query)² accumulated in ascending feature
/// order and w[r] = FastExp(-dist2[r] · inv_2h2) — the same expressions, in
/// the same order, as the row-at-a-time scan in KernelRegression::Predict,
/// but laid out so every loop vectorizes across supports.
void GaussianKernelRow(const double *xt, size_t ns, size_t d, const double *q,
                       double inv_2h2, double *dist2, double *w);

/// Solves the square system A x = b in place via Gaussian elimination with
/// partial pivoting. Returns false on a singular system. The singularity
/// test is scale-relative — a pivot counts as zero only relative to its
/// column's largest input magnitude — so well-conditioned systems in tiny
/// units (e.g. 1e-13 · I) solve instead of spuriously failing.
bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double> *x);

/// Z-score standardization fit on training data and reused at inference.
class Standardizer {
 public:
  void Fit(const Matrix &x);
  std::vector<double> Transform(const std::vector<double> &row) const;
  Matrix TransformAll(const Matrix &x) const;
  /// Allocation-free variant: standardizes into a caller-owned matrix
  /// (resized to x's shape), element-for-element identical to Transform.
  void TransformAllInto(const Matrix &x, Matrix *out) const;
  /// Undo for a single standardized output vector.
  std::vector<double> InverseTransform(const std::vector<double> &row) const;
  /// Row-wise InverseTransform applied to every row of a batch in place;
  /// element-for-element identical to the single-row version.
  void InverseTransformInPlace(Matrix *m) const;

  const std::vector<double> &mean() const { return mean_; }
  const std::vector<double> &stddev() const { return stddev_; }

  /// Restores a fitted state (model persistence).
  void SetState(std::vector<double> mean, std::vector<double> stddev) {
    mean_ = std::move(mean);
    stddev_ = std::move(stddev);
    RebuildInverse();
  }

 private:
  /// Transform multiplies by 1/stddev instead of dividing — one reciprocal
  /// per feature at fit time instead of a division per element at inference.
  /// Both the single-row and batched paths use the same products, so they
  /// stay bit-identical to each other.
  void RebuildInverse() {
    inv_stddev_.resize(stddev_.size());
    for (size_t c = 0; c < stddev_.size(); c++) {
      inv_stddev_[c] = 1.0 / stddev_[c];
    }
  }

  std::vector<double> mean_, stddev_, inv_stddev_;
};

}  // namespace mb2
