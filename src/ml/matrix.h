#pragma once

/// \file matrix.h
/// Dense row-major matrix plus the small linear-algebra kit the regressors
/// need (Gaussian-elimination solve, standardization). OU-model problems are
/// tiny (≤ ~11 features), so clarity beats BLAS here.

#include <cstddef>
#include <vector>

#include "common/macros.h"

namespace mb2 {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRows(const std::vector<std::vector<double>> &rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double &At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double *RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double *RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> Row(size_t r) const {
    return {RowPtr(r), RowPtr(r) + cols_};
  }
  std::vector<double> Col(size_t c) const;

  /// Returns the sub-matrix made of the given row indexes.
  Matrix SelectRows(const std::vector<size_t> &idx) const;

  void AppendRow(const std::vector<double> &row);

  const std::vector<double> &data() const { return data_; }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves the square system A x = b in place via Gaussian elimination with
/// partial pivoting. Returns false on a singular system.
bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double> *x);

/// Z-score standardization fit on training data and reused at inference.
class Standardizer {
 public:
  void Fit(const Matrix &x);
  std::vector<double> Transform(const std::vector<double> &row) const;
  Matrix TransformAll(const Matrix &x) const;
  /// Undo for a single standardized output vector.
  std::vector<double> InverseTransform(const std::vector<double> &row) const;

  const std::vector<double> &mean() const { return mean_; }
  const std::vector<double> &stddev() const { return stddev_; }

  /// Restores a fitted state (model persistence).
  void SetState(std::vector<double> mean, std::vector<double> stddev) {
    mean_ = std::move(mean);
    stddev_ = std::move(stddev);
  }

 private:
  std::vector<double> mean_, stddev_;
};

}  // namespace mb2
